//! Reading and writing signed edge lists in the SNAP text format.
//!
//! The [Stanford SNAP](https://snap.stanford.edu/data/) signed-network
//! dumps used by the paper (`soc-sign-epinions.txt`,
//! `soc-sign-Slashdot090221.txt`) are whitespace-separated triples:
//!
//! ```text
//! # Directed signed network of Epinions
//! # FromNodeId  ToNodeId  Sign
//! 0   1   -1
//! 2   3   1
//! ```
//!
//! Lines starting with `#` are comments. Because SNAP files carry no edge
//! weights, [`read_snap`] assigns every edge weight `1.0`; callers then
//! re-weight with [`jaccard_weights`](crate::jaccard_weights) (as the
//! paper's §IV-B3 does) or any custom scheme. [`write_snap`] emits the
//! same format, dropping weights.

use crate::{GraphError, NodeId, Sign, SignedDigraph, SignedDigraphBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a SNAP-format signed edge list from any reader.
///
/// Duplicate edges follow the builder's last-wins rule; self-loops (which
/// do occur in raw SNAP dumps) are **skipped**, matching the paper's
/// trust-centric semantics where self-trust carries no diffusion.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines (wrong field count,
/// non-integer ids, sign not in `{-1, 1}`) and [`GraphError::Io`] for
/// reader failures. A mutable reference is a fine argument here:
/// `read_snap(&mut file)`.
///
/// # Examples
///
/// ```
/// use isomit_graph::io::read_snap;
/// use isomit_graph::{NodeId, Sign};
///
/// let text = "# comment\n0\t1\t-1\n1\t2\t1\n";
/// let g = read_snap(text.as_bytes())?;
/// assert_eq!((g.node_count(), g.edge_count()), (3, 2));
/// let e = g.edge(NodeId(0), NodeId(1)).expect("edge exists");
/// assert_eq!((e.sign, e.weight), (Sign::Negative, 1.0));
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn read_snap<R: Read>(reader: R) -> Result<SignedDigraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = SignedDigraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (src, dst, sign) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(a), Some(b), Some(s), None) => (a, b, s),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("expected 3 whitespace-separated fields, got {trimmed:?}"),
                })
            }
        };
        let src: u32 = src.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("invalid source node id {src:?}"),
        })?;
        let dst: u32 = dst.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("invalid destination node id {dst:?}"),
        })?;
        let sign_val: i64 = sign.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("invalid sign {sign:?}"),
        })?;
        let sign = Sign::from_value(sign_val).ok_or_else(|| GraphError::Parse {
            line: line_no,
            message: "sign must be -1 or 1, got 0".to_string(),
        })?;
        if src == dst {
            continue; // Self-trust carries no diffusion; skip like the paper.
        }
        builder.add_edge(NodeId(src), NodeId(dst), sign, 1.0)?;
    }
    Ok(builder.build())
}

/// Reads a SNAP-format edge list from a file path.
///
/// # Errors
///
/// See [`read_snap`]; additionally fails if the file cannot be opened.
// lint:allow(doc-examples) thin file-open wrapper over read_snap, whose example covers the parsing; a runnable example would need a fixture path
pub fn read_snap_file<P: AsRef<Path>>(path: P) -> Result<SignedDigraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_snap(file)
}

/// Writes the graph as a SNAP-format signed edge list (weights are not
/// representable in the format and are dropped). A mutable reference is a
/// fine argument here: `write_snap(&g, &mut buf)`.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the writer fails.
///
/// # Examples
///
/// ```
/// use isomit_graph::io::{read_snap, write_snap};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Negative, 0.7)],
/// )?;
/// let mut buf = Vec::new();
/// write_snap(&g, &mut buf)?;
/// // Structure and signs round-trip; the weight is lost by the format.
/// let back = read_snap(buf.as_slice())?;
/// let e = back.edge(NodeId(0), NodeId(1)).expect("edge kept");
/// assert_eq!((e.sign, e.weight), (Sign::Negative, 1.0));
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn write_snap<W: Write>(graph: &SignedDigraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# Directed signed network: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    writeln!(writer, "# FromNodeId\tToNodeId\tSign")?;
    for e in graph.edges() {
        writeln!(writer, "{}\t{}\t{}", e.src.0, e.dst.0, e.sign.value())?;
    }
    Ok(())
}

/// Writes the graph in the weighted TSV format
/// `src<TAB>dst<TAB>sign<TAB>weight` (one edge per line, `#` comments) —
/// a lossless companion to the SNAP format, which cannot carry weights.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the writer fails.
///
/// # Examples
///
/// ```
/// use isomit_graph::io::{read_weighted, write_weighted};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// let g = SignedDigraph::from_edges(
///     2,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.375)],
/// )?;
/// let mut buf = Vec::new();
/// write_weighted(&g, &mut buf)?;
/// // Unlike the SNAP format, weights survive the round trip exactly.
/// let back = read_weighted(buf.as_slice())?;
/// let e = back.edge(NodeId(0), NodeId(1)).expect("edge kept");
/// assert_eq!(e.weight, 0.375);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn write_weighted<W: Write>(graph: &SignedDigraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# Weighted signed network: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    writeln!(writer, "# FromNodeId	ToNodeId	Sign	Weight")?;
    for e in graph.edges() {
        // `{:?}` prints f64 with full round-trip precision.
        writeln!(
            writer,
            "{}	{}	{}	{:?}",
            e.src.0,
            e.dst.0,
            e.sign.value(),
            e.weight
        )?;
    }
    Ok(())
}

/// Parses the weighted TSV format produced by [`write_weighted`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines (wrong field count,
/// bad ids/signs, weights outside `[0, 1]`) and [`GraphError::Io`] for
/// reader failures.
// lint:allow(doc-examples) exercised by the round-trip example on write_weighted directly above
pub fn read_weighted<R: Read>(reader: R) -> Result<SignedDigraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = SignedDigraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let (src, dst, sign, weight) = match (
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
            fields.next(),
        ) {
            (Some(a), Some(b), Some(s), Some(w), None) => (a, b, s, w),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("expected 4 whitespace-separated fields, got {trimmed:?}"),
                })
            }
        };
        let parse_id = |s: &str| -> Result<u32, GraphError> {
            s.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid node id {s:?}"),
            })
        };
        let src = parse_id(src)?;
        let dst = parse_id(dst)?;
        let sign_val: i64 = sign.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("invalid sign {sign:?}"),
        })?;
        let sign = Sign::from_value(sign_val).ok_or_else(|| GraphError::Parse {
            line: line_no,
            message: "sign must be -1 or 1, got 0".to_string(),
        })?;
        let weight: f64 = weight.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("invalid weight {weight:?}"),
        })?;
        builder.add_edge(NodeId(src), NodeId(dst), sign, weight)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment line
# another

0 1 -1
1\t2\t1
3   0   1
";

    #[test]
    fn parses_sample() {
        let g = read_snap(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap().sign, Sign::Negative);
        assert_eq!(g.edge(NodeId(1), NodeId(2)).unwrap().sign, Sign::Positive);
        assert!((g.edge(NodeId(3), NodeId(0)).unwrap().weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skips_self_loops() {
        let g = read_snap("0 0 1\n0 1 1\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = read_snap("0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_snap("0 1 1 extra\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_ids_and_signs() {
        assert!(matches!(
            read_snap("x 1 1\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_snap("0 y 1\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_snap("0 1 maybe\n".as_bytes()),
            Err(GraphError::Parse { .. })
        ));
        let err = read_snap("0 1 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("sign must be -1 or 1"));
    }

    #[test]
    fn error_reports_correct_line() {
        let err = read_snap("# ok\n0 1 1\nbroken\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }

    #[test]
    fn negative_sign_values_accepted() {
        let g = read_snap("0 1 -4\n".as_bytes()).unwrap();
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap().sign, Sign::Negative);
    }

    #[test]
    fn write_read_round_trip() {
        let original = read_snap(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_snap(&original, &mut buf).unwrap();
        let back = read_snap(buf.as_slice()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_snap("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("isomit-graph-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.txt");
        std::fs::write(&path, SAMPLE).unwrap();
        let g = read_snap_file(&path).unwrap();
        assert_eq!(g.edge_count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn weighted_round_trip_is_lossless() {
        let g = read_snap(SAMPLE.as_bytes())
            .unwrap()
            .map_weights(|e| 1.0 / (e.src.0 as f64 + 3.0));
        let mut buf = Vec::new();
        write_weighted(&g, &mut buf).unwrap();
        let back = read_weighted(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn weighted_rejects_malformed_lines() {
        assert!(matches!(
            read_weighted(
                "0 1 1
"
                .as_bytes()
            ),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            read_weighted(
                "0 1 1 nan?
"
                .as_bytes()
            ),
            Err(GraphError::Parse { .. })
        ));
        // Out-of-range weight surfaces as the builder's validation error.
        assert!(matches!(
            read_weighted(
                "0 1 1 3.5
"
                .as_bytes()
            ),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_snap_file("/nonexistent/isomit/file.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
