use crate::{NodeId, Sign};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned signed, weighted, directed edge.
///
/// `Edge` is the exchange format between builders, iterators and I/O; the
/// graph itself stores edges in compressed-sparse-row arrays and hands out
/// [`EdgeRef`]s when iterating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Polarity of the relationship.
    pub sign: Sign,
    /// Weight in `[0, 1]` — an activation probability in diffusion
    /// networks, an intimacy score in social networks.
    pub weight: f64,
}

impl Edge {
    /// Creates a new edge.
    pub fn new(src: NodeId, dst: NodeId, sign: Sign, weight: f64) -> Self {
        Edge {
            src,
            dst,
            sign,
            weight,
        }
    }

    /// Returns the same edge with source and destination swapped, as used
    /// when deriving the diffusion network from the social network
    /// (Definition 2 of the paper: sign and weight are preserved).
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
            ..self
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -({}{:.3})-> {}",
            self.src, self.sign, self.weight, self.dst
        )
    }
}

/// A borrowed view of one edge during iteration over a
/// [`SignedDigraph`](crate::SignedDigraph).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Polarity of the relationship.
    pub sign: Sign,
    /// Weight in `[0, 1]`.
    pub weight: f64,
}

impl EdgeRef {
    /// Converts the reference into an owned [`Edge`].
    #[inline]
    pub fn to_edge(self) -> Edge {
        Edge {
            src: self.src,
            dst: self.dst,
            sign: self.sign,
            weight: self.weight,
        }
    }
}

impl From<EdgeRef> for Edge {
    #[inline]
    fn from(e: EdgeRef) -> Edge {
        e.to_edge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_swaps_endpoints_and_keeps_attributes() {
        let e = Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.25);
        let r = e.reversed();
        assert_eq!(r.src, NodeId(2));
        assert_eq!(r.dst, NodeId(1));
        assert_eq!(r.sign, Sign::Negative);
        assert_eq!(r.weight, 0.25);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn edge_ref_round_trip() {
        let r = EdgeRef {
            src: NodeId(0),
            dst: NodeId(3),
            sign: Sign::Positive,
            weight: 0.5,
        };
        let e: Edge = r.into();
        assert_eq!(e, Edge::new(NodeId(0), NodeId(3), Sign::Positive, 0.5));
    }

    #[test]
    fn display_contains_sign_and_weight() {
        let e = Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.125);
        assert_eq!(e.to_string(), "n1 -(+0.125)-> n2");
    }
}
