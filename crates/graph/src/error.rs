use crate::NodeId;
use std::fmt;

/// Errors produced while constructing or loading signed graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge weight was outside `[0, 1]` or not finite.
    InvalidWeight {
        /// Source node of the offending edge.
        src: NodeId,
        /// Destination node of the offending edge.
        dst: NodeId,
        /// The rejected weight.
        weight: f64,
    },
    /// A self-loop was supplied where none are permitted.
    SelfLoop(
        /// The node that pointed at itself.
        NodeId,
    ),
    /// A node id referenced a node outside the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of what went wrong.
        message: String,
    },
    /// An underlying I/O failure, carried as a string to keep the error
    /// `Clone + PartialEq`.
    Io(
        /// Stringified [`std::io::Error`].
        String,
    ),
    /// A structural invariant of an already-constructed value was
    /// violated (corrupt CSR arrays, out-of-range weight, unsorted
    /// neighbor lists, …). Produced by `validate()` methods; seeing this
    /// means the value was built or deserialized outside the checked
    /// constructors.
    Invariant(
        /// Description of the violated invariant.
        String,
    ),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidWeight { src, dst, weight } => write!(
                f,
                "edge ({src}, {dst}) has weight {weight}, expected a finite value in [0, 1]"
            ),
            GraphError::SelfLoop(node) => {
                write!(f, "self-loop on {node} is not permitted")
            }
            GraphError::NodeOutOfBounds { node, node_count } => write!(
                f,
                "{node} is out of bounds for a graph with {node_count} nodes"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(message) => write!(f, "i/o error: {message}"),
            GraphError::Invariant(message) => {
                write!(f, "structural invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = GraphError::InvalidWeight {
            src: NodeId(1),
            dst: NodeId(2),
            weight: 1.5,
        };
        assert!(e.to_string().contains("weight 1.5"));
        let e = GraphError::Parse {
            line: 3,
            message: "expected 3 fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
