use crate::SignedDigraph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary of a degree distribution (over in- or out-degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Arithmetic mean degree.
    pub mean: f64,
}

impl DegreeStats {
    fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut n = 0usize;
        for d in degrees {
            min = min.min(d);
            max = max.max(d);
            sum += d;
            n += 1;
        }
        if n == 0 {
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
            }
        } else {
            DegreeStats {
                min,
                max,
                mean: sum as f64 / n as f64,
            }
        }
    }
}

/// Basic statistics of a signed digraph, in the spirit of the paper's
/// Table II (nodes, links, link type) extended with sign and degree
/// information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Number of positive edges.
    pub positive_edges: usize,
    /// Fraction of positive edges (`0.0` if there are no edges).
    pub positive_fraction: f64,
    /// Out-degree summary.
    pub out_degree: DegreeStats,
    /// In-degree summary.
    pub in_degree: DegreeStats,
}

/// Fraction of directed edges `(u, v)` whose reverse `(v, u)` also
/// exists; `0.0` on an empty edge set. Trust networks are strongly
/// reciprocal, which is what gives late-joining nodes followers (and
/// therefore diffusion reach) — see the dataset generators.
///
/// # Examples
///
/// ```
/// use isomit_graph::{reciprocity, Edge, NodeId, Sign, SignedDigraph};
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// // One reciprocated pair out of three directed edges.
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(0), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.5),
///     ],
/// )?;
/// assert!((reciprocity(&g) - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn reciprocity(graph: &SignedDigraph) -> f64 {
    if graph.edge_count() == 0 {
        return 0.0;
    }
    let reciprocated = graph
        .edges()
        .filter(|e| graph.has_edge(e.dst, e.src))
        .count();
    reciprocated as f64 / graph.edge_count() as f64
}

/// Transitivity of the directed graph viewed as undirected: closed
/// wedges / all wedges, computed exactly over every node's undirected
/// neighbourhood. This is the clustering that makes Jaccard weights
/// non-zero (DESIGN.md §5).
///
/// Quadratic in degree per node — intended for generated-network
/// validation, not for full-scale graphs (sample first).
///
/// # Examples
///
/// ```
/// use isomit_graph::{global_clustering, Edge, NodeId, Sign, SignedDigraph};
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// // A directed triangle is fully clustered when viewed as undirected.
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
///         Edge::new(NodeId(2), NodeId(0), Sign::Positive, 0.5),
///     ],
/// )?;
/// assert_eq!(global_clustering(&g), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn global_clustering(graph: &SignedDigraph) -> f64 {
    let mut wedges = 0u64;
    let mut closed = 0u64;
    for u in graph.nodes() {
        // Undirected neighbourhood (deduplicated, sorted merge).
        let mut nbrs: Vec<_> = graph
            .out_neighbors(u)
            .iter()
            .chain(graph.in_neighbors(u))
            .copied()
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in nbrs.iter().skip(i + 1) {
                wedges += 1;
                if graph.has_edge(a, b) || graph.has_edge(b, a) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

impl GraphStats {
    /// Computes statistics for `graph` in one pass over nodes.
    ///
    /// ```
    /// use isomit_graph::{Edge, GraphStats, NodeId, Sign, SignedDigraph};
    /// # fn main() -> Result<(), isomit_graph::GraphError> {
    /// let g = SignedDigraph::from_edges(
    ///     3,
    ///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
    /// )?;
    /// let stats = GraphStats::compute(&g);
    /// assert_eq!(stats.nodes, 3);
    /// assert_eq!(stats.positive_edges, 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(graph: &SignedDigraph) -> Self {
        GraphStats {
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            positive_edges: graph.positive_edge_count(),
            positive_fraction: graph.positive_edge_fraction(),
            out_degree: DegreeStats::from_degrees(graph.nodes().map(|u| graph.out_degree(u))),
            in_degree: DegreeStats::from_degrees(graph.nodes().map(|u| graph.in_degree(u))),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} edges ({:.1}% positive), out-degree mean {:.2} max {}, in-degree mean {:.2} max {}",
            self.nodes,
            self.edges,
            self.positive_fraction * 100.0,
            self.out_degree.mean,
            self.out_degree.max,
            self.in_degree.mean,
            self.in_degree.max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, NodeId, Sign};

    #[test]
    fn stats_on_small_graph() {
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
                Edge::new(NodeId(0), NodeId(2), Sign::Negative, 0.5),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
            ],
        )
        .unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.positive_edges, 2);
        assert!((s.positive_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.out_degree.max, 2);
        assert_eq!(s.out_degree.min, 0);
        assert!((s.out_degree.mean - 0.75).abs() < 1e-12);
        assert_eq!(s.in_degree.max, 2);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = SignedDigraph::from_edges(0, []).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(
            s.out_degree,
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0
            }
        );
    }

    #[test]
    fn reciprocity_counts_mutual_pairs() {
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
                Edge::new(NodeId(1), NodeId(0), Sign::Negative, 0.5),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
            ],
        )
        .unwrap();
        // Two of three edges are reciprocated.
        assert!((reciprocity(&g) - 2.0 / 3.0).abs() < 1e-12);
        let empty = SignedDigraph::from_edges(2, []).unwrap();
        assert_eq!(reciprocity(&empty), 0.0);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = SignedDigraph::from_edges(
            3,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
                Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
                Edge::new(NodeId(2), NodeId(0), Sign::Positive, 0.5),
            ],
        )
        .unwrap();
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = SignedDigraph::from_edges(
            4,
            (1..4).map(|i| Edge::new(NodeId(0), NodeId(i), Sign::Positive, 0.5)),
        )
        .unwrap();
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn display_mentions_counts() {
        let g =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0)])
                .unwrap();
        let text = GraphStats::compute(&g).to_string();
        assert!(text.contains("2 nodes"));
        assert!(text.contains("1 edges"));
        assert!(text.contains("100.0% positive"));
    }
}
