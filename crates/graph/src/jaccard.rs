use crate::{NodeId, SignedDigraph};

/// Size of the intersection of two strictly sorted id slices.
fn sorted_intersection_len(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while let (Some(x), Some(y)) = (a.get(i), b.get(j)) {
        match x.cmp(y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard coefficient of the social link `(u, v)`:
/// `|Γ_out(u) ∩ Γ_in(v)| / |Γ_out(u) ∪ Γ_in(v)|`,
/// where `Γ_out(u)` is the set of users `u` follows and `Γ_in(v)` the
/// followers of `v` (Liben-Nowell & Kleinberg's link-prediction score, as
/// used by the paper's §IV-B3 to weight diffusion links).
///
/// Returns `0.0` when both neighbourhoods are empty.
///
/// # Panics
///
/// Panics if either node is out of bounds.
///
/// # Examples
///
/// ```
/// use isomit_graph::{jaccard_coefficient, Edge, NodeId, Sign, SignedDigraph};
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// // 0 follows {1, 2}; 2's followers are {0, 1}. Intersection {1},
/// // union {0, 1, 2} → JC = 1/3.
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
///         Edge::new(NodeId(0), NodeId(2), Sign::Positive, 1.0),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 1.0),
///     ],
/// )?;
/// let jc = jaccard_coefficient(&g, NodeId(0), NodeId(2));
/// assert!((jc - 1.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn jaccard_coefficient(social: &SignedDigraph, u: NodeId, v: NodeId) -> f64 {
    let followees = social.out_neighbors(u);
    let followers = social.in_neighbors(v);
    let inter = sorted_intersection_len(followees, followers);
    let union = followees.len() + followers.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Re-weights every edge `(u, v)` of a social network with its Jaccard
/// coefficient [`jaccard_coefficient`]`(social, u, v)`.
///
/// Edges whose coefficient is zero keep weight `0.0`; the paper replaces
/// those with draws from `U(0, 0.1]` — that stochastic fill lives in
/// `isomit-datasets` so this function stays deterministic.
///
/// # Examples
///
/// ```
/// use isomit_graph::{jaccard_weights, Edge, NodeId, Sign, SignedDigraph};
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
///         Edge::new(NodeId(0), NodeId(2), Sign::Positive, 1.0),
///         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 1.0),
///     ],
/// )?;
/// let w = jaccard_weights(&g);
/// // (0, 2): out(0) = {1, 2}, in(2) = {0, 1} → 1/3; signs are preserved.
/// let e = w.edge(NodeId(0), NodeId(2)).expect("edge kept");
/// assert!((e.weight - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(e.sign, Sign::Positive);
/// # Ok(())
/// # }
/// ```
pub fn jaccard_weights(social: &SignedDigraph) -> SignedDigraph {
    social.map_weights(|e| jaccard_coefficient(social, e.src, e.dst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, Sign};

    fn g(edges: &[(u32, u32)]) -> SignedDigraph {
        SignedDigraph::from_edges(
            0,
            edges
                .iter()
                .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b), Sign::Positive, 1.0)),
        )
        .unwrap()
    }

    #[test]
    fn empty_neighborhoods_give_zero() {
        let g = g(&[(0, 1)]);
        // Node 1 follows nobody, node 0 has no followers.
        assert_eq!(jaccard_coefficient(&g, NodeId(1), NodeId(0)), 0.0);
    }

    #[test]
    fn identical_neighborhoods_give_one() {
        // 0 follows {2, 3}; followers of 1 are {2, 3}.
        let g = g(&[(0, 2), (0, 3), (2, 1), (3, 1)]);
        assert!((jaccard_coefficient(&g, NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        // 0 follows {1, 2, 3}; followers of 4 are {3, 5}.
        // Intersection {3}, union {1, 2, 3, 5} → 1/4.
        let g = g(&[(0, 1), (0, 2), (0, 3), (3, 4), (5, 4)]);
        assert!((jaccard_coefficient(&g, NodeId(0), NodeId(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jaccard_weights_rebuilds_all_edges() {
        let g = g(&[(0, 1), (0, 2), (1, 2)]);
        let w = jaccard_weights(&g);
        assert_eq!(w.edge_count(), 3);
        // (0, 2): out(0) = {1, 2}, in(2) = {0, 1} → 1/3.
        let e = w.edge(NodeId(0), NodeId(2)).unwrap();
        assert!((e.weight - 1.0 / 3.0).abs() < 1e-12);
        // Edge with no overlap gets zero weight.
        let e = w.edge(NodeId(1), NodeId(2)).unwrap();
        // out(1) = {2}, in(2) = {0, 1}: intersection empty → 0.
        assert_eq!(e.weight, 0.0);
    }

    #[test]
    fn weights_stay_in_unit_interval() {
        let g = g(&[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        let w = jaccard_weights(&g);
        for e in w.edges() {
            assert!((0.0..=1.0).contains(&e.weight));
        }
    }

    #[test]
    fn intersection_helper() {
        let a = [NodeId(1), NodeId(3), NodeId(5)];
        let b = [NodeId(2), NodeId(3), NodeId(5), NodeId(9)];
        assert_eq!(sorted_intersection_len(&a, &b), 2);
        assert_eq!(sorted_intersection_len(&a, &[]), 0);
    }
}
