use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`SignedDigraph`](crate::SignedDigraph).
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`. The inner
/// `u32` is public because `NodeId` is a plain index; the newtype exists to
/// keep node indices from being confused with counts, budgets or edge
/// positions in APIs that take several integers.
///
/// ```
/// use isomit_graph::NodeId;
/// let u = NodeId(7);
/// assert_eq!(u.index(), 7);
/// assert_eq!(NodeId::from(7u32), u);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` suitable for indexing into per-node
    /// arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`; graphs in this workspace
    /// are bounded by `u32::MAX` nodes.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId::from_index(42).index(), 42);
        assert_eq!(u32::from(NodeId(9)), 9);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::default(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn from_index_panics_on_overflow() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
