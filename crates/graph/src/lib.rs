//! # isomit-graph
//!
//! Weighted signed directed graph substrate for the `isomit` workspace, the
//! reproduction of *Rumor Initiator Detection in Infected Signed Networks*
//! (Zhang, Aggarwal, Yu — ICDCS 2017).
//!
//! The paper's Definitions 1–3 describe three graph flavours that all share
//! the same shape — a directed graph whose edges carry a polarity
//! ([`Sign`]) and a weight in `[0, 1]`:
//!
//! * the **social network** `G`, where an edge `(u, v)` means *u trusts (or
//!   distrusts) v*;
//! * the **diffusion network** `G_D`, obtained by reversing every social
//!   edge (information flows from the trusted to the truster), see
//!   [`SignedDigraph::reversed`];
//! * the **infected network** `G_I`, an induced subgraph of `G_D` over the
//!   infected nodes, see [`SignedDigraph::induced_subgraph`].
//!
//! All three are represented by [`SignedDigraph`], an immutable
//! compressed-sparse-row structure built through [`SignedDigraphBuilder`].
//! Node opinions about the rumor are represented by [`NodeState`]
//! (`+1`, `−1`, inactive, unknown — the paper's `{+1, -1, 0, ?}`).
//!
//! # Example
//!
//! ```
//! use isomit_graph::{NodeId, Sign, SignedDigraphBuilder};
//!
//! # fn main() -> Result<(), isomit_graph::GraphError> {
//! let mut b = SignedDigraphBuilder::new();
//! b.add_edge(NodeId(0), NodeId(1), Sign::Positive, 0.8)?;
//! b.add_edge(NodeId(1), NodeId(2), Sign::Negative, 0.3)?;
//! let social = b.build();
//! let diffusion = social.reversed();
//! assert!(diffusion.edge(NodeId(1), NodeId(0)).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod builder;
mod edge;
mod error;
mod graph;
mod ids;
mod jaccard;
mod sign;
mod stats;
mod subgraph;

pub mod io;
pub mod json;
pub mod traversal;

pub use builder::SignedDigraphBuilder;
pub use edge::{Edge, EdgeRef};
pub use error::GraphError;
pub use graph::SignedDigraph;
pub use ids::NodeId;
pub use jaccard::{jaccard_coefficient, jaccard_weights};
pub use sign::{NodeState, Sign};
pub use stats::{global_clustering, reciprocity, DegreeStats, GraphStats};
pub use subgraph::NodeMapping;
