use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Mul, Neg};

/// Polarity of a signed edge: trust (`+1`) or distrust (`−1`).
///
/// Signs multiply like the integers they stand for, which is exactly the
/// state-propagation rule of the MFC model (`s(v) = s(u) · s_D(u, v)`):
///
/// ```
/// use isomit_graph::Sign;
/// assert_eq!(Sign::Positive * Sign::Negative, Sign::Negative);
/// assert_eq!(Sign::Negative * Sign::Negative, Sign::Positive);
/// assert_eq!(-Sign::Positive, Sign::Negative);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// A trust (`+1`) relationship.
    Positive,
    /// A distrust (`−1`) relationship.
    Negative,
}

impl Sign {
    /// Returns the integer value of the sign: `+1` or `−1`.
    #[inline]
    pub fn value(self) -> i8 {
        match self {
            Sign::Positive => 1,
            Sign::Negative => -1,
        }
    }

    /// Builds a sign from any non-zero integer, using its arithmetic sign.
    ///
    /// Returns `None` for zero.
    ///
    /// ```
    /// use isomit_graph::Sign;
    /// assert_eq!(Sign::from_value(-4), Some(Sign::Negative));
    /// assert_eq!(Sign::from_value(0), None);
    /// ```
    #[inline]
    pub fn from_value(v: i64) -> Option<Self> {
        match v {
            0 => None,
            v if v > 0 => Some(Sign::Positive),
            _ => Some(Sign::Negative),
        }
    }

    /// `true` for [`Sign::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Sign::Positive)
    }

    /// `true` for [`Sign::Negative`].
    #[inline]
    pub fn is_negative(self) -> bool {
        matches!(self, Sign::Negative)
    }
}

impl Mul for Sign {
    type Output = Sign;

    #[inline]
    fn mul(self, rhs: Sign) -> Sign {
        if self == rhs {
            Sign::Positive
        } else {
            Sign::Negative
        }
    }
}

impl Neg for Sign {
    type Output = Sign;

    #[inline]
    fn neg(self) -> Sign {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Positive => "+",
            Sign::Negative => "-",
        })
    }
}

/// Opinion state of a node about the rumor — the paper's `{+1, −1, 0, ?}`.
///
/// * [`NodeState::Positive`] — believes the rumor (`+1`),
/// * [`NodeState::Negative`] — disbelieves it (`−1`),
/// * [`NodeState::Inactive`] — has not been reached (`0`),
/// * [`NodeState::Unknown`] — state was not observed in the snapshot (`?`).
///
/// `Unknown` is distinct from `Inactive`: an unknown node may well be
/// infected, the snapshot just does not record it. Detection algorithms
/// treat `Unknown` as a wildcard that may assume any state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum NodeState {
    /// Believes the rumor to be true (`+1`).
    Positive,
    /// Believes the rumor to be false (`−1`).
    Negative,
    /// Not activated by the rumor (`0`).
    #[default]
    Inactive,
    /// State not observed in the snapshot (`?`).
    Unknown,
}

impl NodeState {
    /// Returns the opinion as `Some(+1)` / `Some(−1)` for activated nodes,
    /// and `None` for inactive or unknown nodes.
    #[inline]
    pub fn opinion(self) -> Option<i8> {
        match self {
            NodeState::Positive => Some(1),
            NodeState::Negative => Some(-1),
            NodeState::Inactive | NodeState::Unknown => None,
        }
    }

    /// Returns the opinion as a [`Sign`], if the node is activated.
    #[inline]
    pub fn sign(self) -> Option<Sign> {
        match self {
            NodeState::Positive => Some(Sign::Positive),
            NodeState::Negative => Some(Sign::Negative),
            NodeState::Inactive | NodeState::Unknown => None,
        }
    }

    /// Builds an activated state from a [`Sign`].
    #[inline]
    pub fn from_sign(sign: Sign) -> Self {
        match sign {
            Sign::Positive => NodeState::Positive,
            Sign::Negative => NodeState::Negative,
        }
    }

    /// `true` if the node holds an opinion (`+1` or `−1`).
    #[inline]
    pub fn is_active(self) -> bool {
        matches!(self, NodeState::Positive | NodeState::Negative)
    }

    /// `true` for [`NodeState::Unknown`].
    #[inline]
    pub fn is_unknown(self) -> bool {
        matches!(self, NodeState::Unknown)
    }
}

impl From<Sign> for NodeState {
    #[inline]
    fn from(sign: Sign) -> Self {
        NodeState::from_sign(sign)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeState::Positive => "+1",
            NodeState::Negative => "-1",
            NodeState::Inactive => "0",
            NodeState::Unknown => "?",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_multiplication_table() {
        use Sign::*;
        assert_eq!(Positive * Positive, Positive);
        assert_eq!(Positive * Negative, Negative);
        assert_eq!(Negative * Positive, Negative);
        assert_eq!(Negative * Negative, Positive);
    }

    #[test]
    fn sign_value_round_trip() {
        for s in [Sign::Positive, Sign::Negative] {
            assert_eq!(Sign::from_value(s.value() as i64), Some(s));
        }
        assert_eq!(Sign::from_value(0), None);
    }

    #[test]
    fn sign_negation() {
        assert_eq!(-Sign::Negative, Sign::Positive);
        assert_eq!(-(-Sign::Positive), Sign::Positive);
    }

    #[test]
    fn state_opinion_mapping() {
        assert_eq!(NodeState::Positive.opinion(), Some(1));
        assert_eq!(NodeState::Negative.opinion(), Some(-1));
        assert_eq!(NodeState::Inactive.opinion(), None);
        assert_eq!(NodeState::Unknown.opinion(), None);
    }

    #[test]
    fn state_sign_round_trip() {
        for s in [Sign::Positive, Sign::Negative] {
            assert_eq!(NodeState::from_sign(s).sign(), Some(s));
        }
    }

    #[test]
    fn default_state_is_inactive() {
        assert_eq!(NodeState::default(), NodeState::Inactive);
        assert!(!NodeState::default().is_active());
    }

    #[test]
    fn state_propagation_matches_sign_product() {
        // s(v) = s(u) * s(u, v): a negative edge flips the opinion.
        let su = NodeState::Positive.sign().unwrap();
        let edge = Sign::Negative;
        assert_eq!(NodeState::from_sign(su * edge), NodeState::Negative);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Sign::Positive.to_string(), "+");
        assert_eq!(Sign::Negative.to_string(), "-");
        assert_eq!(NodeState::Unknown.to_string(), "?");
        assert_eq!(NodeState::Inactive.to_string(), "0");
    }
}
