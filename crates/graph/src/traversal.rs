//! Graph traversal utilities: BFS/DFS orders, hop distances and
//! reachability over the directed structure (signs and weights are
//! ignored here — these are purely structural helpers used by the
//! detection pipeline and by analyses).

use crate::{NodeId, SignedDigraph};
use std::collections::VecDeque;

/// Direction of traversal along directed edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to destination (`out_edges`).
    Forward,
    /// Follow edges destination to source (`in_edges`).
    Backward,
}

fn neighbors(g: &SignedDigraph, u: NodeId, dir: Direction) -> &[NodeId] {
    match dir {
        Direction::Forward => g.out_neighbors(u),
        Direction::Backward => g.in_neighbors(u),
    }
}

/// Breadth-first order from `start` along `direction`, including
/// `start` itself.
///
/// # Panics
///
/// Panics if `start` is out of bounds.
///
/// # Examples
///
/// ```
/// use isomit_graph::traversal::{bfs_order, Direction};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// // 0 -> {1, 2}, 1 -> 3: visited level by level.
/// let g = SignedDigraph::from_edges(
///     4,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(0), NodeId(2), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(3), Sign::Positive, 0.5),
///     ],
/// )?;
/// let order = bfs_order(&g, NodeId(0), Direction::Forward);
/// assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn bfs_order(g: &SignedDigraph, start: NodeId, direction: Direction) -> Vec<NodeId> {
    assert!(g.contains(start), "start {start} out of bounds");
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in neighbors(g, u, direction) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Depth-first pre-order from `start` along `direction` (iterative, so
/// deep graphs do not overflow the stack). Children are visited in
/// ascending id order.
///
/// # Panics
///
/// Panics if `start` is out of bounds.
///
/// # Examples
///
/// ```
/// use isomit_graph::traversal::{dfs_order, Direction};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// // 0 -> {1, 2}, 1 -> 3: descends through 1 before visiting 2.
/// let g = SignedDigraph::from_edges(
///     4,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(0), NodeId(2), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(3), Sign::Positive, 0.5),
///     ],
/// )?;
/// let order = dfs_order(&g, NodeId(0), Direction::Forward);
/// assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn dfs_order(g: &SignedDigraph, start: NodeId, direction: Direction) -> Vec<NodeId> {
    assert!(g.contains(start), "start {start} out of bounds");
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push in reverse so the smallest neighbour is popped first.
        for &v in neighbors(g, u, direction).iter().rev() {
            if !visited[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Hop distance (unweighted shortest path length) from every node in
/// `sources` to each node, `None` where unreachable. Multi-source BFS.
///
/// # Panics
///
/// Panics if any source is out of bounds.
///
/// # Examples
///
/// ```
/// use isomit_graph::traversal::{hop_distances, Direction};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// // Chain 0 -> 1 -> 2 plus an isolated node 3.
/// let g = SignedDigraph::from_edges(
///     4,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
///     ],
/// )?;
/// let dist = hop_distances(&g, &[NodeId(0)], Direction::Forward);
/// assert_eq!(dist, vec![Some(0), Some(1), Some(2), None]);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn hop_distances(
    g: &SignedDigraph,
    sources: &[NodeId],
    direction: Direction,
) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(g.contains(s), "source {s} out of bounds");
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].expect("queued nodes have distances");
        for &v in neighbors(g, u, direction) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The set of nodes reachable from `sources` (inclusive) along
/// `direction`, ascending.
///
/// # Examples
///
/// ```
/// use isomit_graph::traversal::{reachable_set, Direction};
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// let g = SignedDigraph::from_edges(
///     4,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(2), NodeId(3), Sign::Negative, 0.5),
///     ],
/// )?;
/// let reach = reachable_set(&g, &[NodeId(0)], Direction::Forward);
/// assert_eq!(reach, vec![NodeId(0), NodeId(1)]);
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn reachable_set(g: &SignedDigraph, sources: &[NodeId], direction: Direction) -> Vec<NodeId> {
    hop_distances(g, sources, direction)
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_some())
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// `true` if there is a directed path from `from` to `to`.
///
/// # Panics
///
/// Panics if either node is out of bounds.
///
/// # Examples
///
/// ```
/// use isomit_graph::traversal::is_reachable;
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// let g = SignedDigraph::from_edges(
///     3,
///     [
///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
///         Edge::new(NodeId(1), NodeId(2), Sign::Positive, 0.5),
///     ],
/// )?;
/// assert!(is_reachable(&g, NodeId(0), NodeId(2)));
/// assert!(!is_reachable(&g, NodeId(2), NodeId(0)));
/// # Ok::<(), isomit_graph::GraphError>(())
/// ```
pub fn is_reachable(g: &SignedDigraph, from: NodeId, to: NodeId) -> bool {
    assert!(g.contains(to), "target {to} out of bounds");
    hop_distances(g, &[from], Direction::Forward)[to.index()].is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, Sign};

    fn g(n: usize, edges: &[(u32, u32)]) -> SignedDigraph {
        SignedDigraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b), Sign::Positive, 0.5)),
        )
        .unwrap()
    }

    #[test]
    fn bfs_visits_by_level() {
        // 0 -> {1, 2}; 1 -> 3; 2 -> 3.
        let g = g(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = bfs_order(&g, NodeId(0), Direction::Forward);
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn dfs_goes_deep_first() {
        let g = g(4, &[(0, 1), (0, 2), (1, 3)]);
        let order = dfs_order(&g, NodeId(0), Direction::Forward);
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]);
    }

    #[test]
    fn backward_traversal_follows_in_edges() {
        let g = g(3, &[(0, 2), (1, 2)]);
        let order = bfs_order(&g, NodeId(2), Direction::Backward);
        assert_eq!(order, vec![NodeId(2), NodeId(0), NodeId(1)]);
        assert_eq!(
            bfs_order(&g, NodeId(2), Direction::Forward),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn distances_multi_source() {
        // 0 -> 1 -> 2 -> 3 and a second source at 2.
        let g = g(5, &[(0, 1), (1, 2), (2, 3)]);
        let d = hop_distances(&g, &[NodeId(0), NodeId(2)], Direction::Forward);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(0));
        assert_eq!(d[3], Some(1));
        assert_eq!(d[4], None);
    }

    #[test]
    fn reachability_checks() {
        let g = g(4, &[(0, 1), (1, 2)]);
        assert!(is_reachable(&g, NodeId(0), NodeId(2)));
        assert!(!is_reachable(&g, NodeId(2), NodeId(0)));
        assert!(is_reachable(&g, NodeId(3), NodeId(3)));
        assert_eq!(
            reachable_set(&g, &[NodeId(0)], Direction::Forward),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn cycle_terminates() {
        let g = g(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(bfs_order(&g, NodeId(0), Direction::Forward).len(), 3);
        assert_eq!(dfs_order(&g, NodeId(0), Direction::Forward).len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_start_panics() {
        let g = g(2, &[(0, 1)]);
        bfs_order(&g, NodeId(9), Direction::Forward);
    }

    #[test]
    fn empty_sources_reach_nothing() {
        let g = g(3, &[(0, 1)]);
        assert!(reachable_set(&g, &[], Direction::Forward).is_empty());
    }

    #[test]
    fn deep_chain_dfs_does_not_overflow() {
        let edges: Vec<(u32, u32)> = (0..80_000).map(|i| (i, i + 1)).collect();
        let g = g(80_001, &edges);
        assert_eq!(dfs_order(&g, NodeId(0), Direction::Forward).len(), 80_001);
    }
}
