// lint:allow-file(indexing) CSR adjacency access: offsets are validated monotone and in-bounds by `validate()`, and node indices come from `NodeId`s bounded by `node_count`
use crate::{Edge, EdgeRef, GraphError, NodeId, Sign, SignedDigraphBuilder};
use serde::{Deserialize, Serialize};

/// An immutable weighted signed directed graph in compressed-sparse-row
/// form.
///
/// Nodes are the dense range `0..node_count`. Both out- and in-adjacency
/// are stored, each sorted by neighbour id, so that
/// [`edge`](SignedDigraph::edge) lookups are `O(log degree)` and both
/// diffusion (out-edges) and initiator inference (in-edges) iterate in
/// cache-friendly order.
///
/// Construct one through [`SignedDigraphBuilder`] or
/// [`SignedDigraph::from_edges`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignedDigraph {
    node_count: usize,
    // Out-adjacency CSR: edges leaving node u live at
    // out_dst[out_offsets[u]..out_offsets[u + 1]], sorted by destination.
    out_offsets: Vec<usize>,
    out_dst: Vec<NodeId>,
    out_sign: Vec<Sign>,
    out_weight: Vec<f64>,
    // In-adjacency CSR, mirror of the above sorted by source.
    in_offsets: Vec<usize>,
    in_src: Vec<NodeId>,
    in_sign: Vec<Sign>,
    in_weight: Vec<f64>,
}

impl SignedDigraph {
    /// Builds a graph from an iterator of edges, sizing the node set to the
    /// largest id seen (or `min_nodes`, whichever is larger).
    ///
    /// Later duplicates of the same `(src, dst)` pair replace earlier ones.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`] for weights outside `[0, 1]`
    /// and [`GraphError::SelfLoop`] for self-loops.
    ///
    /// ```
    /// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    /// # fn main() -> Result<(), isomit_graph::GraphError> {
    /// let g = SignedDigraph::from_edges(
    ///     4,
    ///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
    /// )?;
    /// assert_eq!(g.node_count(), 4);
    /// assert_eq!(g.edge_count(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edges<I>(min_nodes: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut builder = SignedDigraphBuilder::with_nodes(min_nodes);
        for e in edges {
            builder.add_edge(e.src, e.dst, e.sign, e.weight)?;
        }
        Ok(builder.build())
    }

    /// Builds a graph from an already-collected edge list, going straight
    /// to the CSR representation without the per-edge builder round trip.
    ///
    /// This is the bulk-ingestion entry point used by the SNAP-scale
    /// loader: validation happens in one pass over the slice, the vector
    /// is consumed in place, and duplicates follow the same last-wins rule
    /// as [`SignedDigraphBuilder`]. Semantically equivalent to
    /// [`from_edges`](SignedDigraph::from_edges); prefer it when the edges
    /// are already materialized in a `Vec` (hundreds of thousands of edges
    /// and up), and the builder when edges trickle in one at a time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidWeight`] for weights outside `[0, 1]`
    /// and [`GraphError::SelfLoop`] for self-loops, matching
    /// [`SignedDigraphBuilder::add_edge`].
    ///
    /// # Examples
    ///
    /// ```
    /// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    /// # fn main() -> Result<(), isomit_graph::GraphError> {
    /// let edges = vec![
    ///     Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
    ///     Edge::new(NodeId(2), NodeId(0), Sign::Negative, 1.0),
    /// ];
    /// let g = SignedDigraph::from_edge_vec(0, edges)?;
    /// assert_eq!(g.node_count(), 3);
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edge_vec(min_nodes: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        let mut node_count = min_nodes;
        for e in &edges {
            if !e.weight.is_finite() || !(0.0..=1.0).contains(&e.weight) {
                return Err(GraphError::InvalidWeight {
                    src: e.src,
                    dst: e.dst,
                    weight: e.weight,
                });
            }
            if e.src == e.dst {
                return Err(GraphError::SelfLoop(e.src));
            }
            node_count = node_count.max(e.src.index() + 1).max(e.dst.index() + 1);
        }
        Ok(Self::from_validated_edges(node_count, edges))
    }

    /// Internal constructor used by the builder. `edges` must already be
    /// validated; duplicates are resolved here (last wins).
    pub(crate) fn from_validated_edges(node_count: usize, mut edges: Vec<Edge>) -> Self {
        // Stable sort keyed on (src, dst); stability preserves insertion
        // order within a duplicate group so "last wins" is the final
        // element of each group.
        edges.sort_by_key(|e| (e.src, e.dst));
        edges.dedup_by(|next, prev| {
            // dedup_by visits (prev, next) adjacent pairs with `next` being
            // removed on true; copy the later edge's payload into `prev` so
            // the survivor carries the last-inserted attributes.
            if next.src == prev.src && next.dst == prev.dst {
                *prev = *next;
                true
            } else {
                false
            }
        });

        let m = edges.len();
        let mut out_offsets = vec![0usize; node_count + 1];
        for e in &edges {
            out_offsets[e.src.index() + 1] += 1;
        }
        for i in 0..node_count {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_dst = Vec::with_capacity(m);
        let mut out_sign = Vec::with_capacity(m);
        let mut out_weight = Vec::with_capacity(m);
        for e in &edges {
            out_dst.push(e.dst);
            out_sign.push(e.sign);
            out_weight.push(e.weight);
        }

        // In-adjacency: counting sort by destination, then sort each bucket
        // by source for binary-searchable lookups.
        let mut in_offsets = vec![0usize; node_count + 1];
        for e in &edges {
            in_offsets[e.dst.index() + 1] += 1;
        }
        for i in 0..node_count {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets[..node_count].to_vec();
        let mut in_src = vec![NodeId(0); m];
        let mut in_sign = vec![Sign::Positive; m];
        let mut in_weight = vec![0.0f64; m];
        for e in &edges {
            let slot = cursor[e.dst.index()];
            cursor[e.dst.index()] += 1;
            in_src[slot] = e.src;
            in_sign[slot] = e.sign;
            in_weight[slot] = e.weight;
        }
        // Buckets were filled in src-sorted order already (edges sorted by
        // (src, dst)), so in_src within each bucket is sorted by source.
        let graph = SignedDigraph {
            node_count,
            out_offsets,
            out_dst,
            out_sign,
            out_weight,
            in_offsets,
            in_src,
            in_sign,
            in_weight,
        };
        #[cfg(debug_assertions)]
        if let Err(e) = graph.validate() {
            panic!("constructor produced a corrupt graph: {e}"); // lint:allow(panic) debug-only self-check; release builds skip it
        }
        graph
    }

    /// Number of nodes (`|V|`).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed edges (`|E|`).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_dst.len()
    }

    /// Iterator over all node ids, `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId::from_index)
    }

    /// `true` if `node` is inside the graph.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.node_count
    }

    #[inline]
    fn out_range(&self, u: NodeId) -> std::ops::Range<usize> {
        debug_assert!(self.contains(u), "node {u} out of bounds");
        self.out_offsets[u.index()]..self.out_offsets[u.index() + 1]
    }

    #[inline]
    fn in_range(&self, u: NodeId) -> std::ops::Range<usize> {
        debug_assert!(self.contains(u), "node {u} out of bounds");
        self.in_offsets[u.index()]..self.in_offsets[u.index() + 1]
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_range(u).len()
    }

    /// In-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_range(u).len()
    }

    /// Edges leaving `u`, sorted by destination.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out_range(u).map(move |i| EdgeRef {
            src: u,
            dst: self.out_dst[i],
            sign: self.out_sign[i],
            weight: self.out_weight[i],
        })
    }

    /// Edges entering `u`, sorted by source.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn in_edges(&self, u: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.in_range(u).map(move |i| EdgeRef {
            src: self.in_src[i],
            dst: u,
            sign: self.in_sign[i],
            weight: self.in_weight[i],
        })
    }

    /// All edges of the graph in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes().flat_map(move |u| self.out_edges(u))
    }

    /// Looks up the edge `(u, v)`, if present, in `O(log out_degree(u))`.
    ///
    /// Returns `None` when either endpoint is out of bounds.
    pub fn edge(&self, u: NodeId, v: NodeId) -> Option<EdgeRef> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        let range = self.out_offsets[u.index()]..self.out_offsets[u.index() + 1];
        let bucket = &self.out_dst[range.clone()];
        let pos = bucket.binary_search(&v).ok()?;
        let i = range.start + pos;
        Some(EdgeRef {
            src: u,
            dst: v,
            sign: self.out_sign[i],
            weight: self.out_weight[i],
        })
    }

    /// `true` if the directed edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge(u, v).is_some()
    }

    /// Out-neighbours of `u` (destinations only), sorted.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_dst[self.out_range(u)]
    }

    /// In-neighbours of `u` (sources only), sorted.
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.in_src[self.in_range(u)]
    }

    /// Returns the reversed graph: every edge `(u, v)` becomes `(v, u)`
    /// with the same sign and weight.
    ///
    /// This is Definition 2 of the paper: the diffusion network `G_D` is
    /// the reversal of the social network `G` ("if B trusts A, information
    /// flows from A to B"). Reversal is an involution:
    /// `g.reversed().reversed() == g`.
    pub fn reversed(&self) -> Self {
        let edges: Vec<Edge> = self.edges().map(|e| e.to_edge().reversed()).collect();
        SignedDigraph::from_validated_edges(self.node_count, edges)
    }

    /// Rebuilds the graph with every edge weight replaced by
    /// `f(edge)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a weight outside `[0, 1]` or a non-finite
    /// value — weight invariants are part of the type's contract.
    pub fn map_weights<F>(&self, mut f: F) -> Self
    where
        F: FnMut(EdgeRef) -> f64,
    {
        let edges: Vec<Edge> = self
            .edges()
            .map(|e| {
                let w = f(e);
                assert!(
                    w.is_finite() && (0.0..=1.0).contains(&w),
                    "map_weights produced invalid weight {w} for edge ({}, {})",
                    e.src,
                    e.dst
                );
                Edge::new(e.src, e.dst, e.sign, w)
            })
            .collect();
        SignedDigraph::from_validated_edges(self.node_count, edges)
    }

    /// Checks every structural invariant of the CSR representation.
    ///
    /// Verified invariants:
    ///
    /// * both offset arrays have `node_count + 1` entries, start at `0`,
    ///   end at `edge_count`, and are monotone non-decreasing;
    /// * all parallel arrays (`dst`/`sign`/`weight`, `src`/`sign`/`weight`)
    ///   have matching lengths;
    /// * every neighbor list is strictly sorted (sorted and deduped) with
    ///   ids inside `0..node_count` and no self-loops;
    /// * every weight is finite and in `[0, 1]` (signs are `{+1, -1}` by
    ///   construction of the [`Sign`] type);
    /// * the in-adjacency is an exact mirror of the out-adjacency: both
    ///   describe the same multiset of `(src, dst, sign, weight)` tuples.
    ///
    /// The checked constructors ([`SignedDigraphBuilder`],
    /// [`SignedDigraph::from_edges`], the SNAP/JSON loaders) uphold these
    /// by construction and re-assert them in debug builds; call this at
    /// ingest time on graphs arriving through other channels (e.g. serde
    /// deserialization of untrusted data), not per-query.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invariant`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.node_count;
        let m = self.out_dst.len();
        let fail = |msg: String| Err(GraphError::Invariant(msg));

        // Offset-array shape.
        for (name, offsets) in [("out", &self.out_offsets), ("in", &self.in_offsets)] {
            if offsets.len() != n + 1 {
                return fail(format!(
                    "{name}_offsets has {} entries, expected node_count + 1 = {}",
                    offsets.len(),
                    n + 1
                ));
            }
            if offsets.first() != Some(&0) {
                return fail(format!("{name}_offsets does not start at 0"));
            }
            let mut adjacent = offsets.iter().zip(offsets.iter().skip(1));
            if let Some((a, b)) = adjacent.find(|(a, b)| b < a) {
                return fail(format!(
                    "{name}_offsets is not monotone: {a} followed by {b}"
                ));
            }
            if offsets.last() != Some(&m) {
                return fail(format!(
                    "{name}_offsets ends at {:?}, expected edge_count {m}",
                    offsets.last()
                ));
            }
        }

        // Parallel-array lengths.
        for (name, len) in [
            ("out_sign", self.out_sign.len()),
            ("out_weight", self.out_weight.len()),
            ("in_src", self.in_src.len()),
            ("in_sign", self.in_sign.len()),
            ("in_weight", self.in_weight.len()),
        ] {
            if len != m {
                return fail(format!("{name} has {len} entries, expected edge_count {m}"));
            }
        }

        // Per-node neighbor lists: in-bounds, strictly sorted, loop-free.
        for (name, offsets, ids) in [
            ("out", &self.out_offsets, &self.out_dst),
            ("in", &self.in_offsets, &self.in_src),
        ] {
            for u in 0..n {
                let (Some(&lo), Some(&hi)) = (offsets.get(u), offsets.get(u + 1)) else {
                    return fail(format!("{name}_offsets truncated at node {u}"));
                };
                let Some(bucket) = ids.get(lo..hi) else {
                    return fail(format!(
                        "{name} bucket {lo}..{hi} of node n{u} exceeds the edge arrays"
                    ));
                };
                for (a, b) in bucket.iter().zip(bucket.iter().skip(1)) {
                    if b <= a {
                        return fail(format!(
                            "{name} neighbor list of n{u} is not strictly sorted: {a} then {b}"
                        ));
                    }
                }
                for &v in bucket {
                    if v.index() >= n {
                        return fail(format!(
                            "{name} neighbor {v} of n{u} is out of bounds for {n} nodes"
                        ));
                    }
                    if v.index() == u {
                        return fail(format!("{name} adjacency of n{u} contains a self-loop"));
                    }
                }
            }
        }

        // Weights.
        for (name, weights) in [("out", &self.out_weight), ("in", &self.in_weight)] {
            if let Some(w) = weights
                .iter()
                .find(|w| !w.is_finite() || !(0.0..=1.0).contains(*w))
            {
                return fail(format!(
                    "{name}_weight contains {w}, expected a finite value in [0, 1]"
                ));
            }
        }

        // Mirror consistency: both CSRs must describe the same edge set,
        // attribute for attribute. Weights compare bitwise: the mirror is
        // built by copying, so even NaN payloads would have to match.
        let mut out_edges: Vec<(NodeId, NodeId, i8, u64)> = self
            .nodes()
            .flat_map(|u| self.out_edges(u))
            .map(|e| (e.src, e.dst, e.sign.value(), e.weight.to_bits()))
            .collect();
        let mut in_edges: Vec<(NodeId, NodeId, i8, u64)> = self
            .nodes()
            .flat_map(|u| self.in_edges(u))
            .map(|e| (e.src, e.dst, e.sign.value(), e.weight.to_bits()))
            .collect();
        out_edges.sort_unstable();
        in_edges.sort_unstable();
        if let Some((o, i)) = out_edges.iter().zip(in_edges.iter()).find(|(o, i)| o != i) {
            return fail(format!(
                "in/out mirror mismatch: out has ({}, {}, {:+}, {}), in has ({}, {}, {:+}, {})",
                o.0,
                o.1,
                o.2,
                f64::from_bits(o.3),
                i.0,
                i.1,
                i.2,
                f64::from_bits(i.3)
            ));
        }
        Ok(())
    }

    /// Total number of positive edges.
    pub fn positive_edge_count(&self) -> usize {
        self.out_sign.iter().filter(|s| s.is_positive()).count()
    }

    /// Fraction of edges that are positive; `0.0` on an empty edge set.
    pub fn positive_edge_fraction(&self) -> f64 {
        if self.edge_count() == 0 {
            0.0
        } else {
            self.positive_edge_count() as f64 / self.edge_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SignedDigraph {
        // 0 -> 1 (+.9), 0 -> 2 (-.4), 1 -> 3 (+.7), 2 -> 3 (-.2)
        SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.9),
                Edge::new(NodeId(0), NodeId(2), Sign::Negative, 0.4),
                Edge::new(NodeId(1), NodeId(3), Sign::Positive, 0.7),
                Edge::new(NodeId(2), NodeId(3), Sign::Negative, 0.2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        let e = g.edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(e.sign, Sign::Negative);
        assert!((e.weight - 0.4).abs() < 1e-12);
        assert!(g.edge(NodeId(2), NodeId(0)).is_none());
        assert!(g.edge(NodeId(0), NodeId(99)).is_none());
        assert!(g.has_edge(NodeId(1), NodeId(3)));
    }

    #[test]
    fn neighbors_sorted() {
        let g = diamond();
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.in_neighbors(NodeId(3)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reversal_is_involution() {
        let g = diamond();
        assert_eq!(g.reversed().reversed(), g);
        let r = g.reversed();
        let e = r.edge(NodeId(3), NodeId(1)).unwrap();
        assert_eq!(e.sign, Sign::Positive);
        assert!((e.weight - 0.7).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edges_last_wins() {
        let g = SignedDigraph::from_edges(
            2,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.1),
                Edge::new(NodeId(0), NodeId(1), Sign::Negative, 0.6),
            ],
        )
        .unwrap();
        assert_eq!(g.edge_count(), 1);
        let e = g.edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(e.sign, Sign::Negative);
        assert!((e.weight - 0.6).abs() < 1e-12);
    }

    #[test]
    fn invalid_weight_rejected() {
        let err =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.5)])
                .unwrap_err();
        assert!(matches!(err, GraphError::InvalidWeight { .. }));
        let err = SignedDigraph::from_edges(
            2,
            [Edge::new(NodeId(0), NodeId(1), Sign::Positive, f64::NAN)],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidWeight { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let err =
            SignedDigraph::from_edges(2, [Edge::new(NodeId(1), NodeId(1), Sign::Positive, 0.5)])
                .unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(NodeId(1)));
    }

    #[test]
    fn empty_graph() {
        let g = SignedDigraph::from_edges(0, []).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.positive_edge_fraction(), 0.0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g =
            SignedDigraph::from_edges(10, [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)])
                .unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.out_degree(NodeId(7)), 0);
        assert_eq!(g.in_degree(NodeId(7)), 0);
    }

    #[test]
    fn map_weights_rebuilds() {
        let g = diamond();
        let h = g.map_weights(|e| e.weight / 2.0);
        assert_eq!(h.edge_count(), g.edge_count());
        let e = h.edge(NodeId(0), NodeId(1)).unwrap();
        assert!((e.weight - 0.45).abs() < 1e-12);
        // Signs untouched.
        assert_eq!(h.edge(NodeId(2), NodeId(3)).unwrap().sign, Sign::Negative);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn map_weights_panics_on_bad_weight() {
        diamond().map_weights(|_| 2.0);
    }

    #[test]
    fn positive_fraction() {
        let g = diamond();
        assert_eq!(g.positive_edge_count(), 2);
        assert!((g.positive_edge_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edges_iterates_in_src_dst_order() {
        let g = diamond();
        let all: Vec<_> = g.edges().map(|e| (e.src.0, e.dst.0)).collect();
        assert_eq!(all, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn validate_accepts_checked_constructions() {
        diamond().validate().unwrap();
        diamond().reversed().validate().unwrap();
        SignedDigraph::from_edges(0, [])
            .unwrap()
            .validate()
            .unwrap();
    }

    fn expect_invariant(g: &SignedDigraph, needle: &str) {
        match g.validate() {
            Err(GraphError::Invariant(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected Invariant error containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn validate_catches_non_monotone_offsets() {
        let mut g = diamond();
        g.out_offsets[1] = 3;
        g.out_offsets[2] = 2;
        expect_invariant(&g, "not monotone");
    }

    #[test]
    fn validate_catches_out_of_range_weight() {
        let mut g = diamond();
        g.out_weight[0] = 1.5;
        expect_invariant(&g, "[0, 1]");
        let mut g = diamond();
        g.in_weight[2] = f64::NAN;
        expect_invariant(&g, "[0, 1]");
    }

    #[test]
    fn validate_catches_unsorted_neighbor_list() {
        let mut g = diamond();
        g.out_dst.swap(0, 1); // node 0's list becomes [2, 1]
        expect_invariant(&g, "not strictly sorted");
    }

    #[test]
    fn validate_catches_in_out_mirror_mismatch() {
        let mut g = diamond();
        g.in_sign[0] = Sign::Negative; // out copy still Positive
        expect_invariant(&g, "mirror mismatch");
        let mut g = diamond();
        g.in_weight[0] = 0.25;
        expect_invariant(&g, "mirror mismatch");
    }

    #[test]
    fn validate_catches_shape_violations() {
        let mut g = diamond();
        g.out_offsets.pop();
        expect_invariant(&g, "entries");
        let mut g = diamond();
        g.out_sign.pop();
        expect_invariant(&g, "out_sign");
        let mut g = diamond();
        g.out_dst[1] = NodeId(99); // node 0's list stays sorted: [1, 99]
        expect_invariant(&g, "out of bounds");
        let mut g = diamond();
        g.out_dst[0] = NodeId(0); // self-loop at node 0
        expect_invariant(&g, "self-loop");
    }

    #[test]
    fn json_round_trip() {
        let g = diamond();
        let json = g.to_json_string();
        let back = SignedDigraph::from_json_str(&json).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn from_edge_vec_matches_from_edges() {
        let edges = vec![
            Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
            Edge::new(NodeId(3), NodeId(1), Sign::Negative, 0.2),
            Edge::new(NodeId(0), NodeId(1), Sign::Negative, 0.9), // duplicate, wins
        ];
        let bulk = SignedDigraph::from_edge_vec(6, edges.clone()).unwrap();
        let incremental = SignedDigraph::from_edges(6, edges).unwrap();
        assert_eq!(bulk, incremental);
        assert_eq!(bulk.node_count(), 6);
        assert_eq!(bulk.edge_count(), 2);
        let e = bulk.edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(e.sign, Sign::Negative);
        assert!((e.weight - 0.9).abs() < 1e-12);
    }

    #[test]
    fn from_edge_vec_rejects_invalid_edges() {
        let self_loop = vec![Edge::new(NodeId(2), NodeId(2), Sign::Positive, 0.5)];
        assert!(matches!(
            SignedDigraph::from_edge_vec(0, self_loop),
            Err(GraphError::SelfLoop(NodeId(2)))
        ));
        let bad_weight = vec![Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.5)];
        assert!(matches!(
            SignedDigraph::from_edge_vec(0, bad_weight),
            Err(GraphError::InvalidWeight { .. })
        ));
    }
}
