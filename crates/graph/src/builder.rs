use crate::{Edge, GraphError, NodeId, Sign, SignedDigraph};

/// Incremental constructor for [`SignedDigraph`].
///
/// The builder validates edges as they arrive (weights must be finite and
/// in `[0, 1]`; self-loops are rejected) and grows the node set to cover
/// every referenced id. Duplicate `(src, dst)` pairs are permitted; the
/// last-added edge wins at [`build`](SignedDigraphBuilder::build) time.
///
/// ```
/// use isomit_graph::{NodeId, Sign, SignedDigraphBuilder};
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// let mut b = SignedDigraphBuilder::new();
/// let a = b.add_node();
/// let c = b.add_node();
/// b.add_edge(a, c, Sign::Positive, 0.4)?;
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignedDigraphBuilder {
    node_count: usize,
    edges: Vec<Edge>,
}

impl SignedDigraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that already contains `nodes` isolated nodes
    /// (ids `0..nodes`).
    pub fn with_nodes(nodes: usize) -> Self {
        SignedDigraphBuilder {
            node_count: nodes,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `edges` edges.
    pub fn with_edge_capacity(mut self, edges: usize) -> Self {
        self.edges.reserve(edges);
        self
    }

    /// Adds a fresh isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.node_count);
        self.node_count += 1;
        id
    }

    /// Grows the node set so that `node` is valid; no-op if it already is.
    pub fn ensure_node(&mut self, node: NodeId) {
        self.node_count = self.node_count.max(node.index() + 1);
    }

    /// Number of nodes currently in the builder.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far (duplicates included).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `(src, dst)`, growing the node set as
    /// needed.
    ///
    /// # Errors
    ///
    /// * [`GraphError::InvalidWeight`] if `weight` is not a finite value in
    ///   `[0, 1]`.
    /// * [`GraphError::SelfLoop`] if `src == dst`.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        sign: Sign,
        weight: f64,
    ) -> Result<(), GraphError> {
        if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
            return Err(GraphError::InvalidWeight { src, dst, weight });
        }
        if src == dst {
            return Err(GraphError::SelfLoop(src));
        }
        self.ensure_node(src);
        self.ensure_node(dst);
        self.edges.push(Edge::new(src, dst, sign, weight));
        Ok(())
    }

    /// Consumes the builder and produces the immutable graph.
    pub fn build(self) -> SignedDigraph {
        SignedDigraph::from_validated_edges(self.node_count, self.edges)
    }
}

impl Extend<Edge> for SignedDigraphBuilder {
    /// Extends the builder with edges, panicking on the first invalid one.
    ///
    /// Use [`add_edge`](SignedDigraphBuilder::add_edge) when the input is
    /// untrusted.
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        for e in iter {
            self.add_edge(e.src, e.dst, e.sign, e.weight)
                .expect("invalid edge passed to Extend<Edge>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_node_set_from_edges() {
        let mut b = SignedDigraphBuilder::new();
        b.add_edge(NodeId(5), NodeId(2), Sign::Negative, 0.3)
            .unwrap();
        assert_eq!(b.node_count(), 6);
        let g = b.build();
        assert_eq!(g.node_count(), 6);
        assert!(g.has_edge(NodeId(5), NodeId(2)));
    }

    #[test]
    fn add_node_returns_sequential_ids() {
        let mut b = SignedDigraphBuilder::with_nodes(3);
        assert_eq!(b.add_node(), NodeId(3));
        assert_eq!(b.add_node(), NodeId(4));
    }

    #[test]
    fn ensure_node_is_idempotent() {
        let mut b = SignedDigraphBuilder::new();
        b.ensure_node(NodeId(9));
        b.ensure_node(NodeId(4));
        assert_eq!(b.node_count(), 10);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = SignedDigraphBuilder::new();
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(1), Sign::Positive, -0.1),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(0), Sign::Positive, 0.5),
            Err(GraphError::SelfLoop(_))
        ));
        // Failed adds must not grow the node set.
        assert_eq!(b.node_count(), 0);
    }

    #[test]
    fn extend_accepts_valid_edges() {
        let mut b = SignedDigraphBuilder::new();
        b.extend([
            Edge::new(NodeId(0), NodeId(1), Sign::Positive, 1.0),
            Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.0),
        ]);
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn extend_panics_on_invalid() {
        let mut b = SignedDigraphBuilder::new();
        b.extend([Edge::new(NodeId(0), NodeId(0), Sign::Positive, 0.5)]);
    }

    #[test]
    fn boundary_weights_accepted() {
        let mut b = SignedDigraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), Sign::Positive, 0.0)
            .unwrap();
        b.add_edge(NodeId(1), NodeId(0), Sign::Positive, 1.0)
            .unwrap();
        assert_eq!(b.build().edge_count(), 2);
    }
}
