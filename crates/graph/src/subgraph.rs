use crate::{Edge, GraphError, NodeId, SignedDigraph};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Bidirectional mapping between node ids of an original graph and the
/// dense ids of a subgraph extracted from it.
///
/// Produced by [`SignedDigraph::induced_subgraph`]; used to translate
/// detection results computed on the subgraph back to the original
/// network. The inverse direction is a sorted table probed by binary
/// search, so lookups are `O(log n)` and iteration order is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMapping {
    /// `sub_to_orig[i]` is the original id of subgraph node `i`.
    sub_to_orig: Vec<NodeId>,
    /// Inverse map: `(original, subgraph)` pairs sorted by original id.
    orig_to_sub: Vec<(NodeId, NodeId)>,
}

impl NodeMapping {
    /// Builds a mapping directly from the subgraph→original id table —
    /// the inverse map is derived. Used when reconstructing a snapshot
    /// from its serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invariant`] if `sub_to_orig` contains
    /// duplicate original ids (the mapping must be injective).
    pub fn from_original_ids(sub_to_orig: Vec<NodeId>) -> Result<Self, GraphError> {
        let mapping = NodeMapping::new(sub_to_orig);
        if mapping.orig_to_sub.len() != mapping.sub_to_orig.len() {
            return Err(GraphError::Invariant(
                "duplicate original ids in node mapping".to_owned(),
            ));
        }
        Ok(mapping)
    }

    pub(crate) fn new(sub_to_orig: Vec<NodeId>) -> Self {
        let mut orig_to_sub: Vec<(NodeId, NodeId)> = sub_to_orig
            .iter()
            .enumerate()
            .map(|(i, &orig)| (orig, NodeId::from_index(i)))
            .collect();
        orig_to_sub.sort_unstable_by_key(|&(orig, _)| orig);
        orig_to_sub.dedup_by_key(|&mut (orig, _)| orig);
        NodeMapping {
            sub_to_orig,
            orig_to_sub,
        }
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.sub_to_orig.len()
    }

    /// `true` if the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.sub_to_orig.is_empty()
    }

    /// Maps a subgraph node id back to the original graph.
    ///
    /// Returns `None` if `sub` is out of bounds for the subgraph.
    pub fn to_original(&self, sub: NodeId) -> Option<NodeId> {
        self.sub_to_orig.get(sub.index()).copied()
    }

    /// Maps an original node id to its subgraph id, if the node was kept.
    pub fn to_subgraph(&self, orig: NodeId) -> Option<NodeId> {
        self.orig_to_sub
            .binary_search_by_key(&orig, |&(o, _)| o)
            .ok()
            .and_then(|i| self.orig_to_sub.get(i))
            .map(|&(_, sub)| sub)
    }

    /// The original ids of all subgraph nodes, indexed by subgraph id.
    pub fn original_ids(&self) -> &[NodeId] {
        &self.sub_to_orig
    }
}

impl SignedDigraph {
    /// Extracts the subgraph induced by `nodes`: the kept nodes are
    /// renumbered densely (in the order given, duplicates ignored) and
    /// every edge whose endpoints are both kept is preserved with its sign
    /// and weight.
    ///
    /// Out-of-bounds ids are ignored rather than rejected, so callers can
    /// pass a candidate set computed against a larger network.
    ///
    /// ```
    /// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    /// # fn main() -> Result<(), isomit_graph::GraphError> {
    /// let g = SignedDigraph::from_edges(
    ///     3,
    ///     [
    ///         Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
    ///         Edge::new(NodeId(1), NodeId(2), Sign::Negative, 0.5),
    ///     ],
    /// )?;
    /// let (sub, map) = g.induced_subgraph([NodeId(1), NodeId(2)]);
    /// assert_eq!(sub.node_count(), 2);
    /// assert_eq!(sub.edge_count(), 1); // only (1, 2) survives
    /// assert_eq!(map.to_original(NodeId(0)), Some(NodeId(1)));
    /// # Ok(())
    /// # }
    /// ```
    pub fn induced_subgraph<I>(&self, nodes: I) -> (SignedDigraph, NodeMapping)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut kept: Vec<NodeId> = Vec::new();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for n in nodes {
            if self.contains(n) && seen.insert(n) {
                kept.push(n);
            }
        }
        let mapping = NodeMapping::new(kept);
        // Edge attributes come from an already-validated graph and the
        // mapping is injective, so the kept edges are valid by
        // construction; build through the internal constructor instead of
        // re-threading an impossible error.
        let mut edges: Vec<Edge> = Vec::new();
        for (sub_idx, &orig) in mapping.original_ids().iter().enumerate() {
            let sub_src = NodeId::from_index(sub_idx);
            for e in self.out_edges(orig) {
                if let Some(sub_dst) = mapping.to_subgraph(e.dst) {
                    edges.push(Edge::new(sub_src, sub_dst, e.sign, e.weight));
                }
            }
        }
        let sub = SignedDigraph::from_validated_edges(mapping.len(), edges);
        (sub, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, Sign};

    fn chain() -> SignedDigraph {
        SignedDigraph::from_edges(
            5,
            (0..4).map(|i| {
                Edge::new(
                    NodeId(i),
                    NodeId(i + 1),
                    if i % 2 == 0 {
                        Sign::Positive
                    } else {
                        Sign::Negative
                    },
                    0.1 * (i + 1) as f64,
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn keeps_internal_edges_only() {
        let g = chain();
        let (sub, map) = g.induced_subgraph([NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(sub.node_count(), 3);
        // Only edge (1, 2) has both endpoints kept.
        assert_eq!(sub.edge_count(), 1);
        let e = sub.edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(e.sign, Sign::Negative);
        assert!((e.weight - 0.2).abs() < 1e-12);
        assert_eq!(map.to_original(NodeId(2)), Some(NodeId(4)));
        assert_eq!(map.to_subgraph(NodeId(4)), Some(NodeId(2)));
        assert_eq!(map.to_subgraph(NodeId(0)), None);
    }

    #[test]
    fn duplicates_and_out_of_bounds_ignored() {
        let g = chain();
        let (sub, map) = g.induced_subgraph([NodeId(2), NodeId(2), NodeId(99), NodeId(3)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map.len(), 2);
        assert_eq!(map.to_original(NodeId(0)), Some(NodeId(2)));
        assert_eq!(map.to_original(NodeId(5)), None);
    }

    #[test]
    fn empty_selection() {
        let g = chain();
        let (sub, map) = g.induced_subgraph([]);
        assert_eq!(sub.node_count(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn full_selection_preserves_graph_modulo_renumbering() {
        let g = chain();
        let (sub, _map) = g.induced_subgraph(g.nodes().collect::<Vec<_>>());
        assert_eq!(sub, g);
    }

    #[test]
    fn renumbering_follows_input_order() {
        let g = chain();
        let (_, map) = g.induced_subgraph([NodeId(3), NodeId(0)]);
        assert_eq!(map.original_ids(), &[NodeId(3), NodeId(0)]);
    }
}
