//! # isomit-metrics
//!
//! Evaluation metrics for rumor-initiator detection, matching §IV-B2 of
//! *Rumor Initiator Detection in Infected Signed Networks* (ICDCS 2017):
//!
//! * **identity** metrics — [`precision`], [`recall`], F1, bundled in
//!   [`Prf`] / [`evaluate_identities`] — compare the detected initiator
//!   set against the ground truth;
//! * **state** metrics — accuracy, MAE, R² ([`StateMetrics`] /
//!   [`evaluate_states`]) — compare inferred initial opinions against
//!   the planted ones, computed *over the correctly identified
//!   initiators* as the paper does.
//!
//! ```
//! use isomit_metrics::evaluate_identities;
//! use isomit_graph::NodeId;
//!
//! let detected = [NodeId(1), NodeId(2), NodeId(3)];
//! let truth = [NodeId(2), NodeId(3), NodeId(4), NodeId(5)];
//! let prf = evaluate_identities(&detected, &truth);
//! assert!((prf.precision - 2.0 / 3.0).abs() < 1e-12);
//! assert!((prf.recall - 0.5).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use isomit_graph::{NodeId, SignedDigraph};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Precision / recall / F1 triple for initiator-identity evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// Fraction of detected initiators that are real.
    pub precision: f64,
    /// Fraction of real initiators that were detected.
    pub recall: f64,
    /// Harmonic mean of precision and recall (`0` when both are `0`).
    pub f1: f64,
}

impl Prf {
    /// Builds the triple from raw counts.
    ///
    /// Empty denominators yield `0.0` (detecting nothing has precision 0
    /// by convention; an empty ground truth has recall 0).
    pub fn from_counts(true_positives: usize, detected: usize, truth: usize) -> Self {
        let precision = if detected == 0 {
            0.0
        } else {
            true_positives as f64 / detected as f64
        };
        let recall = if truth == 0 {
            0.0
        } else {
            true_positives as f64 / truth as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
        }
    }
}

/// Fraction of `detected` appearing in `truth`; `0.0` when nothing was
/// detected. Duplicate ids are counted once.
pub fn precision(detected: &[NodeId], truth: &[NodeId]) -> f64 {
    evaluate_identities(detected, truth).precision
}

/// Fraction of `truth` appearing in `detected`; `0.0` on an empty truth
/// set. Duplicate ids are counted once.
pub fn recall(detected: &[NodeId], truth: &[NodeId]) -> f64 {
    evaluate_identities(detected, truth).recall
}

/// Computes [`Prf`] for a detected initiator set against the ground
/// truth. Duplicate ids on either side are collapsed.
pub fn evaluate_identities(detected: &[NodeId], truth: &[NodeId]) -> Prf {
    let detected: BTreeSet<NodeId> = detected.iter().copied().collect();
    let truth: BTreeSet<NodeId> = truth.iter().copied().collect();
    let tp = detected.intersection(&truth).count();
    Prf::from_counts(tp, detected.len(), truth.len())
}

/// Accuracy / MAE / R² triple for initial-state inference, following the
/// paper's Figure 6 metrics. States are encoded as `±1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateMetrics {
    /// Fraction of exactly matching states.
    pub accuracy: f64,
    /// Mean absolute error — in `{−1, +1}` encoding each miss
    /// contributes `2`.
    pub mae: f64,
    /// Coefficient of determination of the predictions against the true
    /// states. `0.0` when the true states have zero variance and the
    /// predictions are exact; `< 0` is possible for poor predictors.
    pub r2: f64,
}

/// Evaluates inferred states against true states over `(predicted,
/// actual)` pairs (each `±1`). Returns `None` on an empty input — the
/// paper computes these metrics over correctly identified initiators,
/// which can be an empty set.
pub fn evaluate_states(pairs: &[(f64, f64)]) -> Option<StateMetrics> {
    if pairs.is_empty() {
        return None;
    }
    let n = pairs.len() as f64;
    let hits = pairs.iter().filter(|(p, a)| p == a).count() as f64;
    let mae = pairs.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / n;
    let mean_actual = pairs.iter().map(|(_, a)| a).sum::<f64>() / n;
    let ss_tot: f64 = pairs.iter().map(|(_, a)| (a - mean_actual).powi(2)).sum();
    let ss_res: f64 = pairs.iter().map(|(p, a)| (a - p).powi(2)).sum();
    let r2 = if ss_tot == 0.0 {
        // Zero-variance truth: perfect predictions score 0 (the paper's
        // convention collapses here; any error makes R² meaningless, we
        // report -infinity-free 0/negative via ss_res check).
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(StateMetrics {
        accuracy: hits / n,
        mae,
        r2,
    })
}

/// Convenience: evaluates both identity and state metrics in one pass.
///
/// `detected` and `truth` carry `(node, state)` pairs with states encoded
/// `±1`; state metrics are computed over the intersection (correctly
/// identified initiators), matching §IV-D1.
pub fn evaluate_detection(
    detected: &[(NodeId, i8)],
    truth: &[(NodeId, i8)],
) -> (Prf, Option<StateMetrics>) {
    let detected_ids: Vec<NodeId> = detected.iter().map(|&(n, _)| n).collect();
    let truth_ids: Vec<NodeId> = truth.iter().map(|&(n, _)| n).collect();
    let prf = evaluate_identities(&detected_ids, &truth_ids);
    let truth_map: std::collections::BTreeMap<NodeId, i8> = truth.iter().copied().collect();
    let pairs: Vec<(f64, f64)> = detected
        .iter()
        .filter_map(|&(n, p)| truth_map.get(&n).map(|&a| (f64::from(p), f64::from(a))))
        .collect();
    (prf, evaluate_states(&pairs))
}

/// Hop-distance error, the standard metric of the rumor
/// source-detection literature (Shah & Zaman; Prakash et al.): for each
/// detected initiator, the undirected hop distance to the *nearest*
/// true initiator, averaged. `0.0` means every detection is a true
/// initiator; small values mean detections land next to one.
///
/// Returns `None` when either side is empty or no detected node can
/// reach a true initiator (disconnected snapshot regions). Distances are
/// computed on the undirected view via one multi-source BFS from the
/// truth set, `O(n + m)`.
///
/// # Panics
///
/// Panics if a node id is out of bounds for `graph`.
pub fn mean_detection_distance(
    graph: &SignedDigraph,
    detected: &[NodeId],
    truth: &[NodeId],
) -> Option<f64> {
    if detected.is_empty() || truth.is_empty() {
        return None;
    }
    let mut dist: Vec<Option<usize>> = vec![None; graph.node_count()];
    let mut queue = VecDeque::new();
    for &t in truth {
        assert!(graph.contains(t), "truth node {t} out of bounds");
        if dist[t.index()].is_none() {
            dist[t.index()] = Some(0);
            queue.push_back(t);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].expect("queued nodes have distances");
        for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    let reached: Vec<f64> = detected
        .iter()
        .filter_map(|&v| {
            assert!(graph.contains(v), "detected node {v} out of bounds");
            dist[v.index()].map(|d| d as f64)
        })
        .collect();
    if reached.is_empty() {
        None
    } else {
        Some(reached.iter().sum::<f64>() / reached.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_with_empty_sides() {
        let p = Prf::from_counts(0, 0, 5);
        assert_eq!((p.precision, p.recall, p.f1), (0.0, 0.0, 0.0));
        let p = Prf::from_counts(0, 5, 0);
        assert_eq!((p.precision, p.recall, p.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn perfect_detection() {
        let ids = [NodeId(1), NodeId(2)];
        let prf = evaluate_identities(&ids, &ids);
        assert_eq!((prf.precision, prf.recall, prf.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn partial_overlap() {
        let prf = evaluate_identities(&[NodeId(1), NodeId(2)], &[NodeId(2), NodeId(3)]);
        assert!((prf.precision - 0.5).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
        assert!((prf.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_collapsed() {
        let prf = evaluate_identities(&[NodeId(1), NodeId(1), NodeId(1)], &[NodeId(1), NodeId(2)]);
        assert!((prf.precision - 1.0).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let prf = Prf::from_counts(10, 100, 13);
        let expected = 2.0 * prf.precision * prf.recall / (prf.precision + prf.recall);
        assert!((prf.f1 - expected).abs() < 1e-12);
    }

    #[test]
    fn state_metrics_perfect() {
        let m = evaluate_states(&[(1.0, 1.0), (-1.0, -1.0)]).unwrap();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.r2, 1.0);
    }

    #[test]
    fn state_metrics_half_wrong() {
        let m = evaluate_states(&[(1.0, 1.0), (1.0, -1.0)]).unwrap();
        assert_eq!(m.accuracy, 0.5);
        assert_eq!(m.mae, 1.0);
        // SS_res = 4, SS_tot = 2 → R² = −1.
        assert!((m.r2 - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn state_metrics_empty_is_none() {
        assert_eq!(evaluate_states(&[]), None);
    }

    #[test]
    fn state_metrics_zero_variance_truth() {
        let m = evaluate_states(&[(1.0, 1.0), (1.0, 1.0)]).unwrap();
        assert_eq!(m.r2, 1.0);
        let m = evaluate_states(&[(-1.0, 1.0), (1.0, 1.0)]).unwrap();
        assert_eq!(m.r2, 0.0);
    }

    #[test]
    fn combined_evaluation_uses_intersection_for_states() {
        let detected = [(NodeId(1), 1i8), (NodeId(2), -1), (NodeId(9), 1)];
        let truth = [(NodeId(1), 1i8), (NodeId(2), 1), (NodeId(3), -1)];
        let (prf, states) = evaluate_detection(&detected, &truth);
        assert!((prf.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((prf.recall - 2.0 / 3.0).abs() < 1e-12);
        // States over {1 (correct), 2 (wrong)} → accuracy 0.5.
        let s = states.unwrap();
        assert_eq!(s.accuracy, 0.5);
        assert_eq!(s.mae, 1.0);
    }

    #[test]
    fn detection_distance_on_a_path() {
        use isomit_graph::{Edge, Sign};
        // Path 0 - 1 - 2 - 3; truth = {0}.
        let g = SignedDigraph::from_edges(
            4,
            (0..3).map(|i| Edge::new(NodeId(i), NodeId(i + 1), Sign::Positive, 0.5)),
        )
        .unwrap();
        let truth = [NodeId(0)];
        assert_eq!(mean_detection_distance(&g, &[NodeId(0)], &truth), Some(0.0));
        assert_eq!(mean_detection_distance(&g, &[NodeId(2)], &truth), Some(2.0));
        // Average of distances 1 and 3.
        assert_eq!(
            mean_detection_distance(&g, &[NodeId(1), NodeId(3)], &truth),
            Some(2.0)
        );
        // Empty sides yield None.
        assert_eq!(mean_detection_distance(&g, &[], &truth), None);
        assert_eq!(mean_detection_distance(&g, &[NodeId(0)], &[]), None);
    }

    #[test]
    fn detection_distance_unreachable_is_none() {
        use isomit_graph::{Edge, Sign};
        // Two disconnected pairs.
        let g = SignedDigraph::from_edges(
            4,
            [
                Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5),
                Edge::new(NodeId(2), NodeId(3), Sign::Positive, 0.5),
            ],
        )
        .unwrap();
        assert_eq!(
            mean_detection_distance(&g, &[NodeId(2)], &[NodeId(0)]),
            None
        );
        // Mixed: only reachable detections count.
        assert_eq!(
            mean_detection_distance(&g, &[NodeId(1), NodeId(2)], &[NodeId(0)]),
            Some(1.0)
        );
    }

    #[test]
    fn detection_distance_nearest_truth_wins() {
        use isomit_graph::{Edge, Sign};
        // Path with truth at both ends: the middle is 2 from each... the
        // nearest of {0, 4} to node 1 is 0 at distance 1.
        let g = SignedDigraph::from_edges(
            5,
            (0..4).map(|i| Edge::new(NodeId(i), NodeId(i + 1), Sign::Positive, 0.5)),
        )
        .unwrap();
        assert_eq!(
            mean_detection_distance(&g, &[NodeId(1)], &[NodeId(0), NodeId(4)]),
            Some(1.0)
        );
    }

    #[test]
    fn precision_recall_helpers_agree() {
        let d = [NodeId(1), NodeId(4)];
        let t = [NodeId(4)];
        assert_eq!(precision(&d, &t), 0.5);
        assert_eq!(recall(&d, &t), 1.0);
    }
}
