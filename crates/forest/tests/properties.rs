//! Property-based tests: Edmonds branching optimality versus brute force,
//! binarization invariants on random trees, component partitioning.

use isomit_forest::{
    binarize, maximum_branching, weakly_connected_components, UnionFind, WeightedArc,
};
use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
use proptest::prelude::*;

/// Brute-force maximum branching weight by enumerating every parent
/// assignment and keeping acyclic ones.
fn brute_force_weight(n: usize, arcs: &[WeightedArc]) -> f64 {
    let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, a) in arcs.iter().enumerate() {
        in_arcs[a.dst].push(i);
    }
    fn is_acyclic(n: usize, parent: &[Option<usize>]) -> bool {
        for start in 0..n {
            let mut cur = start;
            let mut steps = 0;
            while let Some(p) = parent[cur] {
                cur = p;
                steps += 1;
                if steps > n {
                    return false;
                }
            }
        }
        true
    }
    #[allow(clippy::too_many_arguments)]
    fn rec(
        v: usize,
        n: usize,
        in_arcs: &[Vec<usize>],
        arcs: &[WeightedArc],
        parent: &mut Vec<Option<usize>>,
        weight: f64,
        best: &mut f64,
    ) {
        if v == n {
            if is_acyclic(n, parent) && weight > *best {
                *best = weight;
            }
            return;
        }
        parent[v] = None;
        rec(v + 1, n, in_arcs, arcs, parent, weight, best);
        for &i in &in_arcs[v] {
            parent[v] = Some(arcs[i].src);
            rec(
                v + 1,
                n,
                in_arcs,
                arcs,
                parent,
                weight + arcs[i].weight,
                best,
            );
        }
        parent[v] = None;
    }
    let mut best = 0.0;
    let mut parent = vec![None; n];
    rec(0, n, &in_arcs, arcs, &mut parent, 0.0, &mut best);
    best
}

fn arb_arcs() -> impl Strategy<Value = (usize, Vec<WeightedArc>)> {
    (2usize..7).prop_flat_map(|n| {
        let arc = (0..n, 0..n, 0.01f64..1.0)
            .prop_filter_map("no self-loops", move |(src, dst, weight)| {
                (src != dst).then_some(WeightedArc { src, dst, weight })
            });
        proptest::collection::vec(arc, 0..14).prop_map(move |arcs| (n, arcs))
    })
}

/// Random tree as a children-list structure plus its root.
fn arb_tree() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (1usize..40).prop_flat_map(|n| {
        // Node i > 0 hangs under a uniformly random earlier node: always
        // a valid tree rooted at 0.
        proptest::collection::vec(any::<u64>(), n.saturating_sub(1)).prop_map(move |raw| {
            let mut children = vec![Vec::new(); n];
            for (i, r) in raw.iter().enumerate() {
                let node = i + 1;
                let parent = (*r as usize) % node;
                children[parent].push(node);
            }
            (0usize, children)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn branching_matches_brute_force((n, arcs) in arb_arcs()) {
        let b = maximum_branching(n, &arcs);
        let optimal = brute_force_weight(n, &arcs);
        prop_assert!(
            (b.total_weight() - optimal).abs() < 1e-9,
            "edmonds {} vs brute force {}",
            b.total_weight(),
            optimal
        );
    }

    #[test]
    fn branching_is_structurally_valid((n, arcs) in arb_arcs()) {
        let b = maximum_branching(n, &arcs);
        for v in 0..n {
            if let Some(a) = b.parent_arc(v) {
                prop_assert_eq!(arcs[a].dst, v);
                prop_assert_eq!(Some(arcs[a].src), b.parent(v));
            }
            // Acyclic: walk to a root in <= n steps.
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = b.parent(cur) {
                cur = p;
                steps += 1;
                prop_assert!(steps <= n, "cycle through {}", v);
            }
        }
    }

    #[test]
    fn branching_weight_equals_sum_of_selected((n, arcs) in arb_arcs()) {
        let b = maximum_branching(n, &arcs);
        let sum: f64 = (0..n)
            .filter_map(|v| b.parent_arc(v))
            .map(|a| arcs[a].weight)
            .sum();
        prop_assert!((sum - b.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn binarize_preserves_real_nodes_and_ancestry((root, children) in arb_tree()) {
        let bt = binarize(root, &children);
        // Real node multiset = original node set.
        let mut reals: Vec<usize> = (0..bt.len()).filter_map(|i| bt.original(i)).collect();
        reals.sort_unstable();
        let expected: Vec<usize> = (0..children.len()).collect();
        prop_assert_eq!(reals, expected);
        // Fan-out <= 2 everywhere; dummy count bounded by real count.
        prop_assert!(bt.dummy_count() <= bt.real_count());
        // Nearest real ancestor is the original parent.
        let mut orig_parent = vec![None; children.len()];
        for (p, kids) in children.iter().enumerate() {
            for &k in kids {
                orig_parent[k] = Some(p);
            }
        }
        for node in 0..bt.len() {
            if let Some(orig) = bt.original(node) {
                let actual = bt.real_parent(node).map(|p| bt.original(p).unwrap());
                prop_assert_eq!(actual, orig_parent[orig]);
            }
        }
        // Post-order is a permutation ending at the root.
        let order = bt.post_order();
        prop_assert_eq!(order.len(), bt.len());
        prop_assert_eq!(*order.last().unwrap(), bt.root());
    }

    #[test]
    fn components_agree_with_union_find(
        n in 2usize..30,
        raw_edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..60),
    ) {
        let edges: Vec<Edge> = raw_edges
            .iter()
            .map(|&(a, b)| (a as usize % n, b as usize % n))
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| {
                Edge::new(NodeId(a as u32), NodeId(b as u32), Sign::Positive, 0.5)
            })
            .collect();
        let g = SignedDigraph::from_edges(n, edges).unwrap();
        let comps = weakly_connected_components(&g);
        // Union-find reference.
        let mut uf = UnionFind::new(n);
        for e in g.edges() {
            uf.union(e.src.index(), e.dst.index());
        }
        prop_assert_eq!(comps.len(), uf.component_count());
        // Every component is internally connected under union-find and
        // the partition covers all nodes exactly once.
        let mut total = 0;
        for comp in &comps {
            total += comp.len();
            let rep = uf.find(comp[0].index());
            for &v in comp {
                prop_assert_eq!(uf.find(v.index()), rep);
            }
        }
        prop_assert_eq!(total, n);
    }
}
