// lint:allow-file(indexing) arena-based Chu-Liu/Edmonds indexes per-node scratch arrays sized from the component's node count; Branching::validate() re-checks the parent structure in debug builds
//! Component-wise maximum-branching driver with reusable scratch arenas.
//!
//! [`maximum_branching`](crate::maximum_branching) solves the whole node
//! range in one Chu-Liu/Edmonds run. When the input decomposes into many
//! weakly-connected components — the normal shape of an infected snapshot,
//! where each component is one rumor cascade (paper §III-C) — that single
//! run wastes work: every contraction level re-allocates `best_in`,
//! `cycle_of` and edge vectors sized for *all* nodes, and singleton
//! components flow through the full machinery just to become roots.
//!
//! [`maximum_branching_components`] produces the **bit-identical**
//! branching by solving each component independently against a
//! [`BranchingArena`] of pooled buffers:
//!
//! * arcs are grouped per component with a counting sort that preserves
//!   input order, so each sub-run sees its arcs in the same relative order
//!   as the global run — the deterministic tie-break ("heavier wins; at
//!   equal weight a real arc beats the virtual root, earliest input arc
//!   wins") therefore selects exactly the same arcs;
//! * best-in-edge selection keeps dense per-destination incumbent
//!   weight/flag arrays, replacing the reference's dependent
//!   `edges[best_in[dst]]` re-read with a branch-cheap single pass;
//! * singleton and arc-free components exit early as roots;
//! * `total_weight` is re-accumulated in one global ascending-node pass,
//!   reproducing the reference implementation's floating-point summation
//!   order bit for bit.
//!
//! The determinism suite and the golden fixtures pin this equivalence
//! end-to-end; the unit tests below pin it structurally (equal
//! `parent`/`parent_arc`, bit-equal `total_weight`).

use crate::branching::{Branching, WeightedArc, WorkEdge, ROOT_ARC};
use isomit_graph::NodeId;

/// Sentinel for "no edge / no cycle / unassigned" in the arena's dense
/// index vectors (the arena stores plain `usize` instead of
/// `Option<usize>` to keep the scratch vectors `memset`-cheap).
const NONE: usize = usize::MAX;

/// One contraction level of a component-local Edmonds run.
///
/// Mirrors the reference implementation's level records, but with
/// `usize::MAX` sentinels instead of `Option` and with every vector pooled
/// inside [`BranchingArena`] so repeated runs allocate nothing.
#[derive(Debug, Default)]
struct Level {
    node_count: usize,
    edges: Vec<WorkEdge>,
    /// Chosen in-edge per node (index into `edges`), `NONE` for the root.
    best_in: Vec<usize>,
    /// Cycle membership per node, `NONE` outside every cycle.
    cycle_of: Vec<usize>,
}

/// Reusable scratch space for [`maximum_branching_components`].
///
/// Holds every buffer the component-wise Chu-Liu/Edmonds driver needs —
/// per-component edge lists, contraction level records, cycle-detection
/// state and expansion scratch — so that running the branching over many
/// components (or many snapshots) performs no per-component allocation
/// after warm-up. Construct once with [`Default`] and pass `&mut` to each
/// call; buffers grow to the high-water mark and are then reused.
///
/// An arena is cheap to create, so per-thread ownership (e.g. a
/// `thread_local!`) is the intended sharing model; the type is
/// deliberately not `Sync`-shareable state.
///
/// # Examples
///
/// ```
/// use isomit_forest::{maximum_branching_components, BranchingArena, WeightedArc};
/// use isomit_graph::NodeId;
///
/// let arcs = vec![
///     WeightedArc { src: 0, dst: 1, weight: 0.9 },
///     WeightedArc { src: 2, dst: 3, weight: 0.4 },
/// ];
/// let components = vec![
///     vec![NodeId(0), NodeId(1)],
///     vec![NodeId(2), NodeId(3)],
///     vec![NodeId(4)], // singleton: early-exits as a root
/// ];
/// let mut arena = BranchingArena::default();
/// let b = maximum_branching_components(5, &arcs, &components, &mut arena);
/// assert_eq!(b.parent(1), Some(0));
/// assert_eq!(b.parent(3), Some(2));
/// assert_eq!(b.roots(), vec![0, 2, 4]);
/// // The arena can be reused for the next call at zero allocation cost.
/// let again = maximum_branching_components(5, &arcs, &components, &mut arena);
/// assert_eq!(again, b);
/// ```
#[derive(Debug, Default)]
pub struct BranchingArena {
    // -- driver scratch --------------------------------------------------
    /// Component id per global node.
    comp_of: Vec<usize>,
    /// Local (component-relative) id per global node; written before read
    /// for every node of the component being solved, so it never needs
    /// resetting between components.
    local_of: Vec<usize>,
    /// Arc indices grouped by component, input order preserved per group.
    comp_arc_ids: Vec<usize>,
    /// Per-component offsets into `comp_arc_ids` (length `components + 1`).
    comp_arc_start: Vec<usize>,
    // -- per-component Edmonds scratch -----------------------------------
    /// Working edge list of the level currently being built.
    edges: Vec<WorkEdge>,
    /// Pooled contraction level records.
    levels: Vec<Level>,
    /// Incumbent best-in weight per destination bucket.
    best_weight: Vec<f64>,
    /// Incumbent best-in root-edge flag per destination bucket.
    best_root: Vec<bool>,
    /// Write cursors for the driver's arc-grouping counting sort.
    cursor: Vec<usize>,
    /// Cycle-detection node state: 0 new, 1 on path, 2 done.
    state: Vec<u8>,
    /// Current functional-graph walk.
    path: Vec<usize>,
    /// Contraction relabeling.
    label: Vec<usize>,
    /// Expansion: chosen in-edge per node of the current level.
    selected: Vec<usize>,
    /// Expansion: lower-level edge entering each node, if any.
    entered: Vec<usize>,
    /// Expansion: chosen in-edge per node of the level below.
    lower_selected: Vec<usize>,
}

impl Level {
    /// Prepares the record for a level with `node_count` nodes; `edges`
    /// and `cycle_of` are (re)filled by the caller.
    fn reset(&mut self, node_count: usize) {
        self.node_count = node_count;
        self.best_in.clear();
        self.best_in.resize(node_count, NONE);
        self.cycle_of.clear();
        self.cycle_of.resize(node_count, NONE);
    }
}

/// Computes the same maximum-weight spanning branching as
/// [`maximum_branching`](crate::maximum_branching), but component by
/// component against a reusable [`BranchingArena`].
///
/// `components` must partition `0..n` (e.g. the output of
/// [`weakly_connected_components`](crate::weakly_connected_components) on
/// the snapshot graph), and every arc must stay inside a single component
/// — which holds by construction for weakly-connected components, since an
/// arc weakly connects its endpoints.
///
/// The result is **bit-identical** to the single-run reference: the same
/// arcs are selected (the deterministic tie-break sees each destination's
/// candidate arcs in the same relative order) and `total_weight` is
/// accumulated in the same ascending-node order. Singleton components and
/// components without usable arcs short-circuit to roots without touching
/// the Edmonds machinery.
///
/// # Panics
///
/// Panics if an arc references a node `>= n`, is a self-loop, carries a
/// negative / non-finite weight, crosses two components, or references a
/// node missing from `components`.
///
/// # Examples
///
/// ```
/// use isomit_forest::{
///     maximum_branching, maximum_branching_components, BranchingArena, WeightedArc,
/// };
/// use isomit_graph::NodeId;
///
/// // A 2-cycle component plus an external entry, and a separate chain.
/// let arcs = vec![
///     WeightedArc { src: 0, dst: 1, weight: 0.8 },
///     WeightedArc { src: 1, dst: 0, weight: 0.7 },
///     WeightedArc { src: 2, dst: 0, weight: 0.5 },
///     WeightedArc { src: 3, dst: 4, weight: 0.6 },
/// ];
/// let components = vec![
///     vec![NodeId(0), NodeId(1), NodeId(2)],
///     vec![NodeId(3), NodeId(4)],
/// ];
/// let mut arena = BranchingArena::default();
/// let fast = maximum_branching_components(5, &arcs, &components, &mut arena);
/// let reference = maximum_branching(5, &arcs);
/// assert_eq!(fast, reference);
/// assert_eq!(fast.total_weight().to_bits(), reference.total_weight().to_bits());
/// ```
pub fn maximum_branching_components(
    n: usize,
    arcs: &[WeightedArc],
    components: &[Vec<NodeId>],
    arena: &mut BranchingArena,
) -> Branching {
    for (i, a) in arcs.iter().enumerate() {
        assert!(
            a.src < n && a.dst < n,
            "arc {i} ({}, {}) out of bounds for {n} nodes",
            a.src,
            a.dst
        );
        assert!(a.src != a.dst, "arc {i} is a self-loop on {}", a.src);
        assert!(
            a.weight.is_finite() && a.weight >= 0.0,
            "arc {i} has invalid weight {}",
            a.weight
        );
    }
    if n == 0 {
        return Branching::from_parts(Vec::new(), Vec::new(), 0.0);
    }

    // Component id per node; doubles as the partition check.
    arena.comp_of.clear();
    arena.comp_of.resize(n, NONE);
    for (cid, comp) in components.iter().enumerate() {
        for &v in comp {
            assert!(
                v.index() < n && arena.comp_of[v.index()] == NONE,
                "components must partition 0..{n}: node {v} repeated or out of bounds"
            );
            arena.comp_of[v.index()] = cid;
        }
    }

    // Group arc indices by component with a counting sort, preserving the
    // input order inside each group so every sub-run sees its candidate
    // arcs in the same relative order as the global reference run.
    let comp_count = components.len();
    arena.comp_arc_start.clear();
    arena.comp_arc_start.resize(comp_count + 1, 0);
    for (i, a) in arcs.iter().enumerate() {
        let cid = arena.comp_of[a.src];
        assert!(
            cid != NONE && cid == arena.comp_of[a.dst],
            "arc {i} ({}, {}) crosses components or references an uncovered node",
            a.src,
            a.dst
        );
        arena.comp_arc_start[cid + 1] += 1;
    }
    for cid in 0..comp_count {
        arena.comp_arc_start[cid + 1] += arena.comp_arc_start[cid];
    }
    arena.cursor.clear();
    arena
        .cursor
        .extend_from_slice(&arena.comp_arc_start[..comp_count]);
    arena.comp_arc_ids.clear();
    arena.comp_arc_ids.resize(arcs.len(), 0);
    for (i, a) in arcs.iter().enumerate() {
        let cid = arena.comp_of[a.src];
        arena.comp_arc_ids[arena.cursor[cid]] = i;
        arena.cursor[cid] += 1;
    }

    arena.local_of.clear();
    arena.local_of.resize(n, NONE);

    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut parent_arc: Vec<Option<usize>> = vec![None; n];

    for (cid, comp) in components.iter().enumerate() {
        let arc_lo = arena.comp_arc_start[cid];
        let arc_hi = arena.comp_arc_start[cid + 1];
        // Early exit: a singleton can never take an in-arc, and a
        // component without usable arcs is all roots. Either way the
        // `None` defaults already say the right thing.
        if comp.len() < 2 || arc_lo == arc_hi {
            continue;
        }
        for (local, &v) in comp.iter().enumerate() {
            arena.local_of[v.index()] = local;
        }
        arena.solve_component(comp, arc_lo, arc_hi, arcs, &mut parent, &mut parent_arc);
    }

    // Re-accumulate the total in one global ascending-node pass — the
    // exact floating-point summation order of the reference's level-0
    // read-off, so the sum is bit-identical, not merely close.
    let mut total_weight = 0.0;
    for arc in parent_arc.iter().flatten() {
        total_weight += arcs[*arc].weight;
    }
    let branching = Branching::from_parts(parent, parent_arc, total_weight);
    debug_assert!(
        branching.validate(arcs).is_ok(),
        "maximum_branching_components produced an invalid branching: {:?}",
        branching.validate(arcs)
    );
    branching
}

impl BranchingArena {
    /// Runs arena-backed Chu-Liu/Edmonds on one component and writes the
    /// selected arcs into the global `parent`/`parent_arc` arrays.
    ///
    /// `local_of` must already map this component's nodes to `0..len`;
    /// `comp_arc_ids[arc_lo..arc_hi]` lists the component's arc indices in
    /// input order.
    fn solve_component(
        &mut self,
        comp: &[NodeId],
        arc_lo: usize,
        arc_hi: usize,
        arcs: &[WeightedArc],
        parent: &mut [Option<usize>],
        parent_arc: &mut [Option<usize>],
    ) {
        let comp_len = comp.len();
        let root = comp_len;

        // Level-0 working edges: the component's arcs in input order
        // (carrying their *global* arc index as `parent_edge`), then the
        // virtual-root edges — the same real-arcs-then-root-edges layout
        // as the reference, so per-destination candidate order matches.
        self.edges.clear();
        for k in arc_lo..arc_hi {
            let ga = self.comp_arc_ids[k];
            let a = &arcs[ga];
            self.edges.push(WorkEdge {
                src: self.local_of[a.src],
                dst: self.local_of[a.dst],
                weight: a.weight,
                parent_edge: ga,
                root_edge: false,
            });
        }
        for v in 0..comp_len {
            self.edges.push(WorkEdge {
                src: root,
                dst: v,
                weight: 0.0,
                parent_edge: ROOT_ARC,
                root_edge: true,
            });
        }

        let mut node_count = comp_len + 1;
        let mut root_label = root;
        let mut level_count = 0usize;

        loop {
            if self.levels.len() == level_count {
                self.levels.push(Level::default());
            }
            // Move the record out so its buffers can be filled while the
            // arena's other fields stay borrowable.
            let mut level = std::mem::take(&mut self.levels[level_count]);
            level.reset(node_count);
            level.edges.clear();
            std::mem::swap(&mut level.edges, &mut self.edges);

            // 1. Best incoming edge per node, via destination buckets:
            // `best_weight`/`best_root` shadow the incumbent edge's
            // comparison key per destination, so each candidate costs one
            // sequential edge read plus same-index bucket accesses —
            // never a dependent re-read of the incumbent edge record the
            // way the reference's `edges[cur]` comparison does.
            self.best_weight.clear();
            self.best_weight.resize(node_count, f64::NEG_INFINITY);
            self.best_root.clear();
            self.best_root.resize(node_count, false);
            for (idx, e) in level.edges.iter().enumerate() {
                if e.dst == root_label {
                    continue;
                }
                let better = level.best_in[e.dst] == NONE
                    || e.weight > self.best_weight[e.dst]
                    || (e.weight == self.best_weight[e.dst]
                        && self.best_root[e.dst]
                        && !e.root_edge);
                if better {
                    level.best_in[e.dst] = idx;
                    self.best_weight[e.dst] = e.weight;
                    self.best_root[e.dst] = e.root_edge;
                }
            }

            // 2. Cycle detection in the parent functional graph (identical
            // to the reference walk; `cycle_of` ids follow discovery
            // order, which only feeds relabeling, not selection).
            self.state.clear();
            self.state.resize(node_count, 0);
            let mut cycle_count = 0usize;
            for start in 0..node_count {
                if self.state[start] != 0 {
                    continue;
                }
                self.path.clear();
                let mut v = start;
                loop {
                    if self.state[v] == 1 {
                        // Found a cycle: the suffix of `path` starting at v.
                        let pos = self
                            .path
                            .iter()
                            .position(|&x| x == v)
                            .expect("v is on path");
                        for &x in &self.path[pos..] {
                            level.cycle_of[x] = cycle_count;
                        }
                        cycle_count += 1;
                        break;
                    }
                    if self.state[v] == 2 {
                        break;
                    }
                    self.state[v] = 1;
                    self.path.push(v);
                    match level.best_in[v] {
                        NONE => break,
                        e => v = level.edges[e].src,
                    }
                }
                for &x in &self.path {
                    self.state[x] = 2;
                }
            }

            if cycle_count == 0 {
                self.levels[level_count] = level;
                level_count += 1;
                break;
            }

            // 3. Contract every cycle into a fresh super-node: non-cycle
            // nodes keep their relative order, cycles append after.
            self.label.clear();
            self.label.resize(node_count, NONE);
            let mut next_id = 0usize;
            for (v, slot) in self.label.iter_mut().enumerate() {
                if level.cycle_of[v] == NONE {
                    *slot = next_id;
                    next_id += 1;
                }
            }
            let cycle_base = next_id;
            for v in 0..node_count {
                if level.cycle_of[v] != NONE {
                    self.label[v] = cycle_base + level.cycle_of[v];
                }
            }
            let new_count = cycle_base + cycle_count;
            let new_root = self.label[root_label];

            // `self.edges` is the (empty) buffer swapped out above; it
            // becomes the next level's working edge list.
            for (idx, e) in level.edges.iter().enumerate() {
                let (lu, lv) = (self.label[e.src], self.label[e.dst]);
                if lu == lv {
                    continue;
                }
                let weight = if level.cycle_of[e.dst] != NONE {
                    let chosen = level.best_in[e.dst];
                    debug_assert_ne!(chosen, NONE, "cycle node has a parent");
                    e.weight - level.edges[chosen].weight
                } else {
                    e.weight
                };
                self.edges.push(WorkEdge {
                    src: lu,
                    dst: lv,
                    weight,
                    parent_edge: idx,
                    root_edge: e.root_edge,
                });
            }

            self.levels[level_count] = level;
            level_count += 1;
            node_count = new_count;
            root_label = new_root;
        }

        // 4. Expand level by level; `selected` holds, per node of the
        // current level, the chosen in-edge index at that level.
        let top = level_count - 1;
        self.selected.clear();
        self.selected.extend_from_slice(&self.levels[top].best_in);
        for k in (0..top).rev() {
            {
                let (low, high) = self.levels.split_at(k + 1);
                let lower = &low[k];
                let upper = &high[0];
                self.entered.clear();
                self.entered.resize(lower.node_count, NONE);
                for &chosen in &self.selected {
                    if chosen == NONE {
                        continue;
                    }
                    let lower_edge = upper.edges[chosen].parent_edge;
                    self.entered[lower.edges[lower_edge].dst] = lower_edge;
                }
                self.lower_selected.clear();
                self.lower_selected.resize(lower.node_count, NONE);
                for v in 0..lower.node_count {
                    self.lower_selected[v] = if level_entered_or_plain(lower, &self.entered, v) {
                        self.entered[v]
                    } else {
                        // Cycle members not entered from outside keep
                        // their in-cycle parent.
                        lower.best_in[v]
                    };
                }
            }
            std::mem::swap(&mut self.selected, &mut self.lower_selected);
        }

        // 5. Read off level 0 into the global arrays; `parent_edge` of a
        // level-0 edge is the *global* arc index.
        let base = &self.levels[0];
        for (v, &e) in self.selected.iter().enumerate().take(comp_len) {
            if e == NONE {
                continue;
            }
            let edge = &base.edges[e];
            debug_assert_eq!(edge.dst, v);
            if edge.parent_edge != ROOT_ARC {
                let node = comp[v].index();
                parent[node] = Some(arcs[edge.parent_edge].src);
                parent_arc[node] = Some(edge.parent_edge);
            }
        }
    }
}

/// `true` if node `v` of `lower` takes whatever `entered` says (plain
/// nodes always; cycle nodes only when an external edge entered at `v`).
#[inline]
fn level_entered_or_plain(lower: &Level, entered: &[usize], v: usize) -> bool {
    lower.cycle_of[v] == NONE || entered[v] != NONE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branching::maximum_branching;
    use crate::components::UnionFind;

    fn arcs(list: &[(usize, usize, f64)]) -> Vec<WeightedArc> {
        list.iter()
            .map(|&(src, dst, weight)| WeightedArc { src, dst, weight })
            .collect()
    }

    /// Weak components of `(0..n, arcs)` in the same deterministic shape
    /// as `weakly_connected_components`: ascending by smallest member,
    /// nodes ascending within.
    fn component_sets(n: usize, arcs: &[WeightedArc]) -> Vec<Vec<NodeId>> {
        let mut uf = UnionFind::new(n);
        for a in arcs {
            uf.union(a.src, a.dst);
        }
        let mut by_root: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            let r = uf.find(v);
            by_root[r].push(NodeId::from_index(v));
        }
        by_root.retain(|c| !c.is_empty());
        by_root
    }

    /// Asserts bit-identical agreement between the component driver and
    /// the single-run reference.
    fn assert_matches_reference(n: usize, arcs: &[WeightedArc]) {
        let reference = maximum_branching(n, arcs);
        let components = component_sets(n, arcs);
        let mut arena = BranchingArena::default();
        let fast = maximum_branching_components(n, arcs, &components, &mut arena);
        for v in 0..n {
            assert_eq!(fast.parent(v), reference.parent(v), "parent of {v}");
            assert_eq!(fast.parent_arc(v), reference.parent_arc(v), "arc of {v}");
        }
        assert_eq!(
            fast.total_weight().to_bits(),
            reference.total_weight().to_bits(),
            "total_weight must be bit-identical"
        );
        // And again through the same arena: reuse must not change results.
        let again = maximum_branching_components(n, arcs, &components, &mut arena);
        assert_eq!(again, fast);
    }

    #[test]
    fn empty_graph() {
        let b = maximum_branching_components(0, &[], &[], &mut BranchingArena::default());
        assert!(b.is_empty());
    }

    #[test]
    fn all_singletons_are_roots() {
        let components: Vec<Vec<NodeId>> = (0..4).map(|v| vec![NodeId(v)]).collect();
        let b = maximum_branching_components(4, &[], &components, &mut BranchingArena::default());
        assert_eq!(b.roots(), vec![0, 1, 2, 3]);
        assert_eq!(b.total_weight(), 0.0);
    }

    #[test]
    fn matches_reference_on_two_chains() {
        let a = arcs(&[(0, 1, 0.5), (1, 2, 0.4), (3, 4, 0.9)]);
        assert_matches_reference(5, &a);
    }

    #[test]
    fn matches_reference_on_cycles_per_component() {
        // Component {0,1,2}: 2-cycle plus external entry; component
        // {3,4,5}: pure 3-cycle (the lightest arc must be dropped).
        let a = arcs(&[
            (0, 1, 0.8),
            (1, 0, 0.7),
            (2, 0, 0.5),
            (3, 4, 0.9),
            (4, 5, 0.8),
            (5, 3, 0.3),
        ]);
        assert_matches_reference(6, &a);
    }

    #[test]
    fn matches_reference_on_nested_contraction() {
        // Interlocking cycles force two contraction rounds, next to an
        // untouched singleton and a parallel-arc component.
        let a = arcs(&[
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (3, 0, 0.5),
            (5, 6, 0.3),
            (5, 6, 0.7),
        ]);
        assert_matches_reference(7, &a);
    }

    #[test]
    fn matches_reference_on_equal_weight_ties() {
        // All-equal weights make every selection a tie-break decision;
        // input order must decide identically in both drivers.
        let a = arcs(&[
            (0, 1, 0.5),
            (2, 1, 0.5),
            (1, 0, 0.5),
            (3, 4, 0.5),
            (4, 3, 0.5),
            (3, 4, 0.5),
        ]);
        assert_matches_reference(5, &a);
    }

    #[test]
    fn matches_reference_on_dense_multi_component_graphs() {
        // Deterministic pseudo-random weights over K5 ⊔ K4 ⊔ chain ⊔
        // singletons, several seeds.
        for seed in 0..8 {
            let mut w = 0.13f64 + 0.07 * seed as f64;
            let mut all = Vec::new();
            let mut push_clique = |all: &mut Vec<WeightedArc>, lo: usize, hi: usize| {
                for s in lo..hi {
                    for d in lo..hi {
                        if s != d {
                            all.push(WeightedArc {
                                src: s,
                                dst: d,
                                weight: w,
                            });
                            w = (w * 31.7 + 0.11) % 1.0;
                        }
                    }
                }
            };
            push_clique(&mut all, 0, 5);
            push_clique(&mut all, 5, 9);
            all.push(WeightedArc {
                src: 9,
                dst: 10,
                weight: 0.25,
            });
            // Nodes 11, 12 stay isolated singletons.
            assert_matches_reference(13, &all);
        }
    }

    #[test]
    fn arena_reuse_shrinks_then_grows() {
        // Solve a large component, then a small one, then large again:
        // pooled buffers must resize correctly in both directions.
        let mut arena = BranchingArena::default();
        let big = arcs(&[(0, 1, 0.9), (1, 2, 0.8), (2, 0, 0.7), (3, 2, 0.6)]);
        let big_components = component_sets(4, &big);
        let b1 = maximum_branching_components(4, &big, &big_components, &mut arena);
        let small = arcs(&[(0, 1, 0.4)]);
        let small_components = component_sets(2, &small);
        let s = maximum_branching_components(2, &small, &small_components, &mut arena);
        assert_eq!(s.parent(1), Some(0));
        let b2 = maximum_branching_components(4, &big, &big_components, &mut arena);
        assert_eq!(b1, b2);
    }

    #[test]
    #[should_panic(expected = "crosses components")]
    fn cross_component_arc_panics() {
        let a = arcs(&[(0, 1, 0.5)]);
        let components = vec![vec![NodeId(0)], vec![NodeId(1)]];
        maximum_branching_components(2, &a, &components, &mut BranchingArena::default());
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn repeated_node_in_components_panics() {
        let components = vec![vec![NodeId(0), NodeId(0)]];
        maximum_branching_components(1, &[], &components, &mut BranchingArena::default());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_arc_panics() {
        maximum_branching_components(
            2,
            &arcs(&[(0, 5, 0.5)]),
            &[],
            &mut BranchingArena::default(),
        );
    }
}
