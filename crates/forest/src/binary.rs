// lint:allow-file(indexing) binarization gadget arrays (children, original, parent) grow together, so every stored id is a valid index into its sibling arrays
use serde::{Deserialize, Serialize};

/// A binary tree produced by [`binarize`], the paper's Figure 3
/// transformation.
///
/// Nodes are indexed `0..len`. Each node is either **real** — carrying
/// the index of an original tree node — or a **dummy** inserted to bring
/// the fan-out down to two. Dummies are transparent to information
/// diffusion: they can never be rumor initiators and the edges adjacent
/// to them carry probability 1 in the dynamic program.
///
/// Structural invariants (upheld by construction, checked by
/// `debug_assert`s):
///
/// * every node has at most two children;
/// * the real nodes' ancestor relation equals the original tree's: the
///   nearest real ancestor of a real node is its original parent;
/// * dummies have at least one descendant real node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryTree {
    /// `original[i]` is `Some(orig)` for real nodes, `None` for dummies.
    original: Vec<Option<usize>>,
    children: Vec<[Option<usize>; 2]>,
    parent: Vec<Option<usize>>,
    root: usize,
}

impl BinaryTree {
    /// Number of nodes (real + dummy).
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// `true` if the tree has no nodes — never produced by [`binarize`],
    /// which requires a root.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// Index of the root node (always a real node).
    pub fn root(&self) -> usize {
        self.root
    }

    /// The original tree node a binary node stands for, `None` for
    /// dummies.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn original(&self, node: usize) -> Option<usize> {
        self.original[node]
    }

    /// `true` if `node` is a dummy.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn is_dummy(&self, node: usize) -> bool {
        self.original[node].is_none()
    }

    /// Left child, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn left(&self, node: usize) -> Option<usize> {
        self.children[node][0]
    }

    /// Right child, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn right(&self, node: usize) -> Option<usize> {
        self.children[node][1]
    }

    /// Parent pointer, `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// Number of real nodes.
    pub fn real_count(&self) -> usize {
        self.original.iter().filter(|o| o.is_some()).count()
    }

    /// Number of dummy nodes.
    pub fn dummy_count(&self) -> usize {
        self.len() - self.real_count()
    }

    /// Nodes in post-order (children before parents) — the evaluation
    /// order of the k-ISOMIT-BT dynamic program. Iterative, so arbitrarily
    /// deep trees do not overflow the stack.
    pub fn post_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![(self.root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
            } else {
                stack.push((node, true));
                for child in self.children[node].iter().flatten() {
                    stack.push((*child, false));
                }
            }
        }
        order
    }

    /// The nearest *real* ancestor of `node` (skipping dummies), `None`
    /// for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn real_parent(&self, node: usize) -> Option<usize> {
        let mut cur = self.parent[node]?;
        loop {
            if let Some(orig) = self.original[cur] {
                let _ = orig;
                return Some(cur);
            }
            cur = self.parent[cur]?;
        }
    }
}

/// Transforms an arbitrary rooted tree into a [`BinaryTree`] by inserting
/// dummy internal nodes under every node with more than two children
/// (paper §III-E3, Figure 3).
///
/// `children[v]` lists the children of original node `v`; `root` is the
/// original root index. Original nodes keep their identity through
/// [`BinaryTree::original`]; a node with `c > 2` children gains at most
/// `c − 2` dummies arranged as a balanced gadget of depth `⌈log₂ c⌉`.
///
/// # Panics
///
/// Panics if `root` is out of bounds, if a child index is out of bounds,
/// or if the structure is not a tree rooted at `root` (a node reachable
/// twice, or unreachable nodes are simply ignored — they are not part of
/// the tree).
///
/// ```
/// use isomit_forest::binarize;
///
/// // Root 0 with three children: one dummy is inserted.
/// let children = vec![vec![1, 2, 3], vec![], vec![], vec![]];
/// let bt = binarize(0, &children);
/// assert_eq!(bt.real_count(), 4);
/// assert!(bt.dummy_count() >= 1);
/// // Every real child's nearest real ancestor is the original parent.
/// for node in 0..bt.len() {
///     if let Some(orig) = bt.original(node) {
///         if orig != 0 {
///             let p = bt.real_parent(node).unwrap();
///             assert_eq!(bt.original(p), Some(0));
///         }
///     }
/// }
/// ```
pub fn binarize(root: usize, children: &[Vec<usize>]) -> BinaryTree {
    let n = children.len();
    assert!(root < n, "root {root} out of bounds for {n} nodes");

    let mut tree = BinaryTree {
        original: Vec::new(),
        children: Vec::new(),
        parent: Vec::new(),
        root: 0,
    };
    let mut seen = vec![false; n];

    // Allocates a new binary-tree node.
    fn alloc(tree: &mut BinaryTree, original: Option<usize>, parent: Option<usize>) -> usize {
        let id = tree.original.len();
        tree.original.push(original);
        tree.children.push([None, None]);
        tree.parent.push(parent);
        id
    }

    fn attach_child(tree: &mut BinaryTree, parent: usize, child: usize) {
        let slot = tree.children[parent]
            .iter_mut()
            .find(|s| s.is_none())
            .expect("binary gadget never exceeds two children");
        *slot = Some(child);
    }

    let bt_root = alloc(&mut tree, Some(root), None);
    tree.root = bt_root;
    seen[root] = true;

    // Work items: a binary parent node and the slice of original children
    // still to hang beneath it (at most two slots available).
    let mut work: Vec<(usize, Vec<usize>)> = vec![(bt_root, children[root].clone())];
    while let Some((bt_parent, orig_children)) = work.pop() {
        match orig_children.len() {
            0 => {}
            1 | 2 => {
                for orig in orig_children {
                    assert!(orig < n, "child {orig} out of bounds for {n} nodes");
                    assert!(!seen[orig], "node {orig} reached twice: not a tree");
                    seen[orig] = true;
                    let bt_child = alloc(&mut tree, Some(orig), Some(bt_parent));
                    attach_child(&mut tree, bt_parent, bt_child);
                    work.push((bt_child, children[orig].clone()));
                }
            }
            c => {
                // Balanced split under two gadget slots; a half of size 1
                // attaches directly, a larger half gets a dummy.
                let mid = c / 2;
                for half in [&orig_children[..mid], &orig_children[mid..]] {
                    if half.len() == 1 {
                        let orig = half[0];
                        assert!(orig < n, "child {orig} out of bounds for {n} nodes");
                        assert!(!seen[orig], "node {orig} reached twice: not a tree");
                        seen[orig] = true;
                        let bt_child = alloc(&mut tree, Some(orig), Some(bt_parent));
                        attach_child(&mut tree, bt_parent, bt_child);
                        work.push((bt_child, children[orig].clone()));
                    } else {
                        let dummy = alloc(&mut tree, None, Some(bt_parent));
                        attach_child(&mut tree, bt_parent, dummy);
                        work.push((dummy, half.to_vec()));
                    }
                }
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects original ids of real nodes in the binary tree.
    fn real_ids(bt: &BinaryTree) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..bt.len()).filter_map(|i| bt.original(i)).collect();
        ids.sort_unstable();
        ids
    }

    /// Verifies the real-ancestor invariant against the original tree.
    fn check_ancestry(bt: &BinaryTree, children: &[Vec<usize>]) {
        let mut orig_parent = vec![None; children.len()];
        for (p, kids) in children.iter().enumerate() {
            for &k in kids {
                orig_parent[k] = Some(p);
            }
        }
        for node in 0..bt.len() {
            if let Some(orig) = bt.original(node) {
                let expected = orig_parent[orig];
                let actual = bt.real_parent(node).map(|p| bt.original(p).unwrap());
                assert_eq!(actual, expected, "ancestry broken at original node {orig}");
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let bt = binarize(0, &[vec![]]);
        assert_eq!(bt.len(), 1);
        assert_eq!(bt.real_count(), 1);
        assert_eq!(bt.dummy_count(), 0);
        assert_eq!(bt.root(), 0);
        assert_eq!(bt.post_order(), vec![0]);
    }

    #[test]
    fn binary_tree_needs_no_dummies() {
        let children = vec![vec![1, 2], vec![], vec![3], vec![]];
        let bt = binarize(0, &children);
        assert_eq!(bt.dummy_count(), 0);
        assert_eq!(bt.real_count(), 4);
        check_ancestry(&bt, &children);
    }

    #[test]
    fn three_children_insert_one_dummy() {
        let children = vec![vec![1, 2, 3], vec![], vec![], vec![]];
        let bt = binarize(0, &children);
        assert_eq!(bt.real_count(), 4);
        assert_eq!(bt.dummy_count(), 1);
        check_ancestry(&bt, &children);
        // Every node has at most 2 children by representation; root's
        // children: one real + one dummy, or two gadget slots.
        let root_kids: Vec<usize> = bt.children[bt.root()].iter().flatten().copied().collect();
        assert_eq!(root_kids.len(), 2);
    }

    #[test]
    fn wide_fanout_dummy_count_bounded() {
        // Star with 9 leaves: at most 7 dummies (c - 2), depth ⌈log2 9⌉.
        let mut children = vec![Vec::new(); 10];
        children[0] = (1..10).collect();
        let bt = binarize(0, &children);
        assert_eq!(bt.real_count(), 10);
        assert!(
            bt.dummy_count() <= 7,
            "too many dummies: {}",
            bt.dummy_count()
        );
        check_ancestry(&bt, &children);
        // Depth of any leaf at most 1 + ceil(log2 9) = 5.
        for node in 0..bt.len() {
            let mut depth = 0;
            let mut cur = node;
            while let Some(p) = bt.parent(cur) {
                cur = p;
                depth += 1;
            }
            assert!(depth <= 5, "leaf too deep: {depth}");
        }
    }

    #[test]
    fn post_order_visits_children_first() {
        let children = vec![vec![1, 2, 3], vec![4], vec![], vec![], vec![]];
        let bt = binarize(0, &children);
        let order = bt.post_order();
        assert_eq!(order.len(), bt.len());
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for node in 0..bt.len() {
            for child in bt.children[node].iter().flatten() {
                assert!(pos[child] < pos[&node], "child after parent in post-order");
            }
        }
        assert_eq!(*order.last().unwrap(), bt.root());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 50k-node path: post_order and binarize must stay iterative.
        let n = 50_000;
        let mut children = vec![Vec::new(); n];
        for (i, kids) in children.iter_mut().enumerate().take(n - 1) {
            kids.push(i + 1);
        }
        let bt = binarize(0, &children);
        assert_eq!(bt.len(), n);
        assert_eq!(bt.post_order().len(), n);
    }

    #[test]
    fn real_ids_preserved_exactly() {
        let children = vec![
            vec![3, 1],
            vec![2],
            vec![],
            vec![4, 5, 6],
            vec![],
            vec![],
            vec![],
        ];
        let bt = binarize(0, &children);
        assert_eq!(real_ids(&bt), vec![0, 1, 2, 3, 4, 5, 6]);
        check_ancestry(&bt, &children);
    }

    #[test]
    #[should_panic(expected = "reached twice")]
    fn non_tree_input_panics() {
        // Node 2 has two parents.
        let children = vec![vec![1, 2], vec![2], vec![]];
        binarize(0, &children);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_root_panics() {
        binarize(5, &[vec![]]);
    }

    #[test]
    fn unreachable_nodes_are_ignored() {
        // Node 2 is disconnected; the tree contains only 0 and 1.
        let children = vec![vec![1], vec![], vec![]];
        let bt = binarize(0, &children);
        assert_eq!(bt.real_count(), 2);
        assert_eq!(real_ids(&bt), vec![0, 1]);
    }
}
