//! # isomit-forest
//!
//! Structural algorithms behind the RID pipeline of *Rumor Initiator
//! Detection in Infected Signed Networks* (ICDCS 2017):
//!
//! * [`weakly_connected_components`] — the paper's §III-E1 *infected
//!   connected components detection* (BFS over the undirected view), plus
//!   a reusable [`UnionFind`].
//! * [`maximum_branching`] — maximum-weight spanning branching of a
//!   directed weighted graph via the Chu-Liu/Edmonds algorithm with cycle
//!   contraction, covering the paper's Algorithms 2 (MWSG), 3 (Contract
//!   Circles) and 4 (Infected Cascade Trees Extraction). The branching is
//!   the maximum-likelihood cascade forest: maximizing `Σ log w` equals
//!   maximizing `Π w`.
//! * [`maximum_branching_components`] — the same branching, bit for bit,
//!   computed component by component against a reusable
//!   [`BranchingArena`]; the allocation-lean fast path used by the RID
//!   engine's forest extraction on large snapshots.
//! * [`BinaryTree`] / [`binarize`] — the §III-E3 transformation of an
//!   arbitrary cascade tree into a binary tree by inserting dummy nodes
//!   (paper's Figure 3), enabling the k-ISOMIT-BT dynamic program.
//!
//! # Example: extract the most likely cascade forest
//!
//! ```
//! use isomit_forest::{maximum_branching, WeightedArc};
//!
//! // Two candidate parents for node 2; the heavier one wins.
//! let arcs = vec![
//!     WeightedArc { src: 0, dst: 2, weight: 0.9 },
//!     WeightedArc { src: 1, dst: 2, weight: 0.4 },
//! ];
//! let branching = maximum_branching(3, &arcs);
//! assert_eq!(branching.parent(2), Some(0));
//! assert!(branching.is_root(0) && branching.is_root(1));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod binary;
mod branching;
mod component_branching;
mod components;

pub use binary::{binarize, BinaryTree};
pub use branching::{maximum_branching, Branching, WeightedArc};
pub use component_branching::{maximum_branching_components, BranchingArena};
pub use components::{weakly_connected_components, UnionFind};
