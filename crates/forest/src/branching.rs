// lint:allow-file(indexing) Chu-Liu/Edmonds indexes per-node scratch arrays (state, best_in, cycle_of) allocated with the contracted graph's node count; Branching::validate() checks the parent structure
use isomit_graph::GraphError;
use serde::{Deserialize, Serialize};

/// A directed weighted arc, input to [`maximum_branching`].
///
/// Indices are plain `usize` (not [`isomit_graph::NodeId`]) because the
/// branching is computed on pruned per-component edge sets whose node
/// numbering is local to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedArc {
    /// Source node, `< n`.
    pub src: usize,
    /// Destination node, `< n`.
    pub dst: usize,
    /// Non-negative finite weight.
    pub weight: f64,
}

/// The result of [`maximum_branching`]: a spanning branching (forest of
/// arborescences) in parent-pointer form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Branching {
    parent: Vec<Option<usize>>,
    parent_arc: Vec<Option<usize>>,
    total_weight: f64,
}

impl Branching {
    /// Internal constructor for the component-wise driver; callers must
    /// uphold the invariants checked by [`Branching::validate`].
    pub(crate) fn from_parts(
        parent: Vec<Option<usize>>,
        parent_arc: Vec<Option<usize>>,
        total_weight: f64,
    ) -> Self {
        Branching {
            parent,
            parent_arc,
            total_weight,
        }
    }

    /// Parent of `v` in the branching, `None` if `v` is a root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Index (into the input arc slice) of the arc selected as `v`'s
    /// in-edge, `None` if `v` is a root.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn parent_arc(&self, v: usize) -> Option<usize> {
        self.parent_arc[v]
    }

    /// `true` if `v` has no parent.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn is_root(&self, v: usize) -> bool {
        self.parent[v].is_none()
    }

    /// All roots in ascending order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.parent.len())
            .filter(|&v| self.parent[v].is_none())
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` for the empty branching.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Sum of the selected arcs' weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Checks every structural invariant of the branching against the
    /// arcs it was computed from.
    ///
    /// Verified invariants:
    ///
    /// * `parent` and `parent_arc` have equal length and agree on which
    ///   nodes are roots;
    /// * every selected arc index is in bounds and the arc really runs
    ///   from the recorded parent to the node;
    /// * the parent pointers are acyclic (walking up from any node
    ///   reaches a root);
    /// * `total_weight` equals the sum of the selected arcs' weights.
    ///
    /// [`maximum_branching`] upholds these by construction and re-asserts
    /// them in debug builds; call this on branchings arriving through
    /// other channels (e.g. serde deserialization), not per-query.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Invariant`] naming the first violated
    /// invariant.
    pub fn validate(&self, arcs: &[WeightedArc]) -> Result<(), GraphError> {
        let n = self.parent.len();
        let fail = |msg: String| Err(GraphError::Invariant(msg));
        if self.parent_arc.len() != n {
            return fail(format!(
                "parent has {n} entries but parent_arc has {}",
                self.parent_arc.len()
            ));
        }
        let mut weight = 0.0;
        for (v, (p, a)) in self.parent.iter().zip(self.parent_arc.iter()).enumerate() {
            match (p, a) {
                (None, None) => {}
                (Some(p), Some(a)) => {
                    let Some(arc) = arcs.get(*a) else {
                        return fail(format!(
                            "node {v} selects arc {a}, but only {} arcs exist",
                            arcs.len()
                        ));
                    };
                    if arc.src != *p || arc.dst != v {
                        return fail(format!(
                            "node {v} records parent {p} via arc {a}, but that arc is ({}, {})",
                            arc.src, arc.dst
                        ));
                    }
                    weight += arc.weight;
                }
                _ => {
                    return fail(format!(
                        "node {v}: parent and parent_arc disagree on rootness"
                    ))
                }
            }
        }
        if (weight - self.total_weight).abs() > 1e-9 * weight.abs().max(1.0) {
            return fail(format!(
                "total_weight {} does not match the selected arcs' sum {weight}",
                self.total_weight
            ));
        }
        // Acyclicity: walking up from any node terminates within n steps.
        for v in 0..n {
            let mut cur = v;
            let mut steps = 0usize;
            while let Some(p) = self.parent.get(cur).copied().flatten() {
                cur = p;
                steps += 1;
                if steps > n {
                    return fail(format!("parent pointers cycle through node {v}"));
                }
            }
        }
        Ok(())
    }

    /// Children lists, derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut children = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(v);
            }
        }
        children
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkEdge {
    pub(crate) src: usize,
    pub(crate) dst: usize,
    pub(crate) weight: f64,
    /// Index of the edge this one descends from, one level down
    /// (at level 0: the input arc index, or `usize::MAX` for virtual-root
    /// edges).
    pub(crate) parent_edge: usize,
    /// `true` if the edge descends from a virtual-root edge.
    pub(crate) root_edge: bool,
}

#[derive(Debug)]
struct LevelRecord {
    node_count: usize,
    edges: Vec<WorkEdge>,
    best_in: Vec<Option<usize>>,
    /// Cycle membership per node at this level.
    cycle_of: Vec<Option<usize>>,
    cycles: Vec<Vec<usize>>,
}

pub(crate) const ROOT_ARC: usize = usize::MAX;

/// Computes a **maximum-weight spanning branching** of the directed graph
/// `(0..n, arcs)` with the Chu-Liu/Edmonds algorithm.
///
/// Every node selects at most one incoming arc; the selected arcs are
/// acyclic and their total weight is maximal. This realizes the paper's
/// Algorithms 2–4 (MWSG + Contract Circles + cascade-tree extraction):
/// per weakly-connected infected component, the maximum branching *is*
/// the maximum-likelihood cascade forest, because maximizing
/// `Σ log w(u, v)` equals maximizing `Π w(u, v)`.
///
/// Tie-breaking is deterministic: higher weight wins; at equal weight a
/// real arc beats remaining a root, and the earliest arc in input order
/// wins. Nodes with no incoming arcs (and nodes whose best alternative is
/// to start a new tree) become roots.
///
/// Runs in `O(m · c)` where `c ≤ n` is the number of contraction rounds
/// (small in practice).
///
/// # Panics
///
/// Panics if an arc references a node `>= n`, is a self-loop, or carries
/// a negative / non-finite weight.
pub fn maximum_branching(n: usize, arcs: &[WeightedArc]) -> Branching {
    for (i, a) in arcs.iter().enumerate() {
        assert!(
            a.src < n && a.dst < n,
            "arc {i} ({}, {}) out of bounds for {n} nodes",
            a.src,
            a.dst
        );
        assert!(a.src != a.dst, "arc {i} is a self-loop on {}", a.src);
        assert!(
            a.weight.is_finite() && a.weight >= 0.0,
            "arc {i} has invalid weight {}",
            a.weight
        );
    }
    if n == 0 {
        return Branching {
            parent: Vec::new(),
            parent_arc: Vec::new(),
            total_weight: 0.0,
        };
    }

    // Virtual root r = n turns the branching problem into a spanning
    // arborescence problem: an `(r, v)` edge of weight 0 selected for `v`
    // means "v is a root".
    let root = n;
    let mut edges: Vec<WorkEdge> = arcs
        .iter()
        .enumerate()
        .map(|(i, a)| WorkEdge {
            src: a.src,
            dst: a.dst,
            weight: a.weight,
            parent_edge: i,
            root_edge: false,
        })
        .collect();
    edges.extend((0..n).map(|v| WorkEdge {
        src: root,
        dst: v,
        weight: 0.0,
        parent_edge: ROOT_ARC,
        root_edge: true,
    }));

    let mut node_count = n + 1;
    let mut root_label = root;
    let mut levels: Vec<LevelRecord> = Vec::new();

    loop {
        // 1. Best incoming edge per node (the root never takes one).
        let mut best_in: Vec<Option<usize>> = vec![None; node_count];
        for (idx, e) in edges.iter().enumerate() {
            if e.dst == root_label {
                continue;
            }
            let better = match best_in[e.dst] {
                None => true,
                Some(cur) => {
                    let c = &edges[cur];
                    e.weight > c.weight || (e.weight == c.weight && c.root_edge && !e.root_edge)
                }
            };
            if better {
                best_in[e.dst] = Some(idx);
            }
        }

        // 2. Cycle detection in the parent functional graph.
        let mut state = vec![0u8; node_count]; // 0 new, 1 on path, 2 done
        let mut cycle_of: Vec<Option<usize>> = vec![None; node_count];
        let mut cycles: Vec<Vec<usize>> = Vec::new();
        for start in 0..node_count {
            if state[start] != 0 {
                continue;
            }
            let mut path = Vec::new();
            let mut v = start;
            loop {
                if state[v] == 1 {
                    // Found a cycle: the suffix of `path` starting at `v`.
                    let pos = path.iter().position(|&x| x == v).expect("v is on path");
                    let cycle: Vec<usize> = path[pos..].to_vec();
                    let id = cycles.len();
                    for &x in &cycle {
                        cycle_of[x] = Some(id);
                    }
                    cycles.push(cycle);
                    break;
                }
                if state[v] == 2 {
                    break;
                }
                state[v] = 1;
                path.push(v);
                match best_in[v] {
                    Some(e) => v = edges[e].src,
                    None => break,
                }
            }
            for &x in &path {
                state[x] = 2;
            }
        }

        let acyclic = cycles.is_empty();
        let record = LevelRecord {
            node_count,
            edges: std::mem::take(&mut edges),
            best_in,
            cycle_of,
            cycles,
        };

        if acyclic {
            levels.push(record);
            break;
        }

        // 3. Contract every cycle into a fresh super-node.
        let mut label = vec![usize::MAX; node_count];
        let mut next_id = 0usize;
        for (v, slot) in label.iter_mut().enumerate() {
            if record.cycle_of[v].is_none() {
                *slot = next_id;
                next_id += 1;
            }
        }
        let cycle_base = next_id;
        for (cid, cycle) in record.cycles.iter().enumerate() {
            for &v in cycle {
                label[v] = cycle_base + cid;
            }
        }
        let new_count = cycle_base + record.cycles.len();
        let new_root = label[root_label];

        let mut new_edges = Vec::with_capacity(record.edges.len());
        for (idx, e) in record.edges.iter().enumerate() {
            let (lu, lv) = (label[e.src], label[e.dst]);
            if lu == lv {
                continue;
            }
            let weight = if record.cycle_of[e.dst].is_some() {
                let chosen = record.best_in[e.dst].expect("cycle node has a parent");
                e.weight - record.edges[chosen].weight
            } else {
                e.weight
            };
            new_edges.push(WorkEdge {
                src: lu,
                dst: lv,
                weight,
                parent_edge: idx,
                root_edge: e.root_edge,
            });
        }

        levels.push(record);
        edges = new_edges;
        node_count = new_count;
        root_label = new_root;
    }

    // 4. Expand level by level. `selected` holds, per node of the current
    // level, the chosen in-edge index at that level.
    let top = levels.len() - 1;
    let mut selected: Vec<Option<usize>> = levels[top].best_in.clone();
    for k in (0..top).rev() {
        let upper = &levels[k + 1];
        let lower = &levels[k];
        let mut lower_selected: Vec<Option<usize>> = vec![None; lower.node_count];
        // Map each chosen upper-level edge to the lower-level edge it
        // descends from; its dst is the entry point into a cycle or a
        // plain node.
        let mut entered: Vec<Option<usize>> = vec![None; lower.node_count];
        for chosen in selected.iter().flatten() {
            let lower_edge = upper.edges[*chosen].parent_edge;
            entered[lower.edges[lower_edge].dst] = Some(lower_edge);
        }
        for (v, slot) in lower_selected.iter_mut().enumerate() {
            *slot = match (lower.cycle_of[v], entered[v]) {
                (None, e) => e,
                // The cycle was entered at v: the external edge replaces
                // v's cycle parent.
                (Some(_), Some(e)) => Some(e),
                // Other cycle members keep their in-cycle parent.
                (Some(_), None) => lower.best_in[v],
            };
        }
        selected = lower_selected;
    }

    // 5. Read off the answer at level 0.
    let base = &levels[0];
    let mut parent = vec![None; n];
    let mut parent_arc = vec![None; n];
    let mut total_weight = 0.0;
    for v in 0..n {
        if let Some(e) = selected[v] {
            let edge = &base.edges[e];
            debug_assert_eq!(edge.dst, v);
            if edge.parent_edge != ROOT_ARC {
                parent[v] = Some(edge.src);
                parent_arc[v] = Some(edge.parent_edge);
                total_weight += arcs[edge.parent_edge].weight;
            }
        }
    }
    let branching = Branching {
        parent,
        parent_arc,
        total_weight,
    };
    debug_assert!(
        branching.validate(arcs).is_ok(),
        "maximum_branching produced an invalid branching: {:?}",
        branching.validate(arcs)
    );
    branching
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arcs(list: &[(usize, usize, f64)]) -> Vec<WeightedArc> {
        list.iter()
            .map(|&(src, dst, weight)| WeightedArc { src, dst, weight })
            .collect()
    }

    /// Checks structural validity via the public validator.
    fn validate(n: usize, arcs: &[WeightedArc], b: &Branching) {
        assert_eq!(b.len(), n);
        b.validate(arcs).unwrap();
    }

    fn expect_invariant(b: &Branching, arcs: &[WeightedArc], needle: &str) {
        match b.validate(arcs) {
            Err(isomit_graph::GraphError::Invariant(msg)) => {
                assert!(msg.contains(needle), "message {msg:?} lacks {needle:?}")
            }
            other => panic!("expected Invariant error containing {needle:?}, got {other:?}"),
        }
    }

    #[test]
    fn validate_catches_corruption() {
        let a = arcs(&[(0, 1, 0.5), (1, 2, 0.5)]);
        let good = maximum_branching(3, &a);
        good.validate(&a).unwrap();

        let mut b = good.clone();
        b.parent[2] = Some(0); // arc 1 runs (1, 2), not (0, 2)
        expect_invariant(&b, &a, "that arc is");

        let mut b = good.clone();
        b.parent_arc[2] = Some(9);
        expect_invariant(&b, &a, "arcs exist");

        let mut b = good.clone();
        b.parent[2] = None; // parent_arc still Some
        expect_invariant(&b, &a, "disagree on rootness");

        let mut b = good.clone();
        b.total_weight = 9.0;
        expect_invariant(&b, &a, "does not match");

        let mut b = good.clone();
        // 1 -> 2 -> 1 cycle: point 1's parent at 2 via a fabricated arc.
        let cyclic = arcs(&[(0, 1, 0.5), (1, 2, 0.5), (2, 1, 0.5)]);
        b.parent[1] = Some(2);
        b.parent_arc[1] = Some(2);
        expect_invariant(&b, &cyclic, "cycle");
    }

    #[test]
    fn empty_graph() {
        let b = maximum_branching(0, &[]);
        assert!(b.is_empty());
        assert_eq!(b.total_weight(), 0.0);
    }

    #[test]
    fn no_arcs_all_roots() {
        let b = maximum_branching(3, &[]);
        assert_eq!(b.roots(), vec![0, 1, 2]);
    }

    #[test]
    fn picks_heaviest_parent() {
        let a = arcs(&[(0, 2, 0.9), (1, 2, 0.4)]);
        let b = maximum_branching(3, &a);
        validate(3, &a, &b);
        assert_eq!(b.parent(2), Some(0));
        assert_eq!(b.parent_arc(2), Some(0));
        assert!((b.total_weight() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn simple_cycle_is_broken_optimally() {
        // 0 <-> 1 cycle plus external edge into 0.
        let a = arcs(&[(0, 1, 0.8), (1, 0, 0.7), (2, 0, 0.5)]);
        let b = maximum_branching(3, &a);
        validate(3, &a, &b);
        // Best: keep (0,1)=0.8 and take (2,0)=0.5 → 1.3, dropping (1,0).
        assert_eq!(b.parent(1), Some(0));
        assert_eq!(b.parent(0), Some(2));
        assert!((b.total_weight() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn isolated_cycle_drops_lightest_edge() {
        // Pure 3-cycle, no external entry: drop the lightest arc.
        let a = arcs(&[(0, 1, 0.9), (1, 2, 0.8), (2, 0, 0.3)]);
        let b = maximum_branching(3, &a);
        validate(3, &a, &b);
        assert!(b.is_root(0));
        assert_eq!(b.parent(1), Some(0));
        assert_eq!(b.parent(2), Some(1));
        assert!((b.total_weight() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn cycle_entry_point_chosen_to_maximize_total() {
        // Cycle 0 -> 1 -> 0; entering at 1 costs dropping (0, 1).
        // External options: (2, 0, 0.6) vs (2, 1, 0.65).
        // Enter at 0: keep (0,1)=0.9, add 0.6 → 1.5 (drop (1,0)=0.5).
        // Enter at 1: keep (1,0)=0.5, add 0.65 → 1.15.
        let a = arcs(&[(0, 1, 0.9), (1, 0, 0.5), (2, 0, 0.6), (2, 1, 0.65)]);
        let b = maximum_branching(3, &a);
        validate(3, &a, &b);
        assert_eq!(b.parent(0), Some(2));
        assert_eq!(b.parent(1), Some(0));
        assert!((b.total_weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nested_contraction() {
        // Two interlocking cycles force two contraction rounds.
        let a = arcs(&[
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (3, 0, 0.5),
        ]);
        let b = maximum_branching(4, &a);
        validate(4, &a, &b);
        // All of 0, 1, 2 reachable from 3; total 0.5 + 1.0 + 1.0 = 2.5.
        assert!((b.total_weight() - 2.5).abs() < 1e-12);
        assert!(b.is_root(3));
        assert_eq!(b.parent(0), Some(3));
    }

    #[test]
    fn parallel_arcs_pick_heavier() {
        let a = arcs(&[(0, 1, 0.3), (0, 1, 0.7)]);
        let b = maximum_branching(2, &a);
        validate(2, &a, &b);
        assert_eq!(b.parent_arc(1), Some(1));
    }

    #[test]
    fn zero_weight_arc_still_usable() {
        // Forced-parent flavour: a 0-weight arc is preferred over
        // rootless-ness... both give total 0; tie-break prefers the real
        // arc, matching the paper's MWSG which always picks an in-edge.
        let a = arcs(&[(0, 1, 0.0)]);
        let b = maximum_branching(2, &a);
        validate(2, &a, &b);
        assert_eq!(b.parent(1), Some(0));
    }

    #[test]
    fn chain_reconstruction() {
        let a = arcs(&[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)]);
        let b = maximum_branching(4, &a);
        validate(4, &a, &b);
        assert_eq!(b.roots(), vec![0]);
        assert_eq!(b.children()[1], vec![2]);
        assert!((b.total_weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_arc_panics() {
        maximum_branching(2, &arcs(&[(0, 5, 0.5)]));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        maximum_branching(2, &arcs(&[(1, 1, 0.5)]));
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        maximum_branching(2, &arcs(&[(0, 1, -0.5)]));
    }

    /// Exhaustive check against brute force on all small digraphs.
    #[test]
    fn matches_brute_force_on_dense_small_graphs() {
        // Deterministic pseudo-random weights over all arcs of K4.
        let mut all = Vec::new();
        let mut w = 0.13f64;
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    all.push(WeightedArc {
                        src: s,
                        dst: d,
                        weight: w,
                    });
                    w = (w * 31.7 + 0.11) % 1.0;
                }
            }
        }
        let b = maximum_branching(4, &all);
        validate(4, &all, &b);
        assert!((b.total_weight() - brute_force(4, &all)).abs() < 1e-9);
    }

    /// Brute-force maximum branching by enumerating parent choices.
    fn brute_force(n: usize, arcs: &[WeightedArc]) -> f64 {
        let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, a) in arcs.iter().enumerate() {
            in_arcs[a.dst].push(i);
        }
        fn is_acyclic(n: usize, parent: &[Option<usize>]) -> bool {
            for start in 0..n {
                let mut cur = start;
                let mut steps = 0;
                while let Some(p) = parent[cur] {
                    cur = p;
                    steps += 1;
                    if steps > n {
                        return false;
                    }
                }
            }
            true
        }
        fn rec(
            v: usize,
            n: usize,
            in_arcs: &[Vec<usize>],
            arcs: &[WeightedArc],
            parent: &mut Vec<Option<usize>>,
            weight: f64,
            best: &mut f64,
        ) {
            if v == n {
                if is_acyclic(n, parent) && weight > *best {
                    *best = weight;
                }
                return;
            }
            parent[v] = None;
            rec(v + 1, n, in_arcs, arcs, parent, weight, best);
            for &i in &in_arcs[v] {
                parent[v] = Some(arcs[i].src);
                rec(
                    v + 1,
                    n,
                    in_arcs,
                    arcs,
                    parent,
                    weight + arcs[i].weight,
                    best,
                );
            }
            parent[v] = None;
        }
        let mut best = 0.0;
        let mut parent = vec![None; n];
        rec(0, n, &in_arcs, arcs, &mut parent, 0.0, &mut best);
        best
    }
}
