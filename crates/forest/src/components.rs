// lint:allow-file(indexing) union-find parent/rank arrays are allocated with node_count entries and only indexed by NodeId indices from the same graph
use isomit_graph::{NodeId, SignedDigraph};
use std::collections::VecDeque;

/// Disjoint-set (union-find) structure with path compression and union by
/// rank.
///
/// ```
/// use isomit_forest::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Appends a fresh singleton set and returns its index.
    ///
    /// Lets incremental callers grow the universe one element at a time
    /// (e.g. a streaming session infecting a node it has never seen)
    /// without rebuilding the structure.
    ///
    /// ```
    /// use isomit_forest::UnionFind;
    ///
    /// let mut uf = UnionFind::new(2);
    /// let c = uf.push();
    /// assert_eq!(c, 2);
    /// assert_eq!(uf.component_count(), 3);
    /// uf.union(0, c);
    /// assert!(uf.connected(0, 2));
    /// ```
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        self.components += 1;
        id
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

/// Splits a directed graph into weakly connected components: maximal node
/// sets connected when edge directions are ignored (the paper's
/// Definition 6, *infected connected components*).
///
/// Runs BFS from every unvisited node — `O(n + m)` as in §III-E1.
/// Components are returned in ascending order of their smallest node id,
/// and nodes within a component ascend too, so output is deterministic.
///
/// ```
/// use isomit_forest::weakly_connected_components;
/// use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
///
/// # fn main() -> Result<(), isomit_graph::GraphError> {
/// let g = SignedDigraph::from_edges(
///     4,
///     [Edge::new(NodeId(0), NodeId(1), Sign::Positive, 0.5)],
/// )?;
/// let comps = weakly_connected_components(&g);
/// assert_eq!(comps.len(), 3); // {0, 1}, {2}, {3}
/// assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
/// # Ok(())
/// # }
/// ```
pub fn weakly_connected_components(graph: &SignedDigraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut components = Vec::new();
    let mut queue = VecDeque::new();
    for start in graph.nodes() {
        if visited[start.index()] {
            continue;
        }
        visited[start.index()] = true;
        queue.push_back(start);
        let mut component = Vec::new();
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &v in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, Sign};

    fn g(n: usize, edges: &[(u32, u32)]) -> SignedDigraph {
        SignedDigraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b), Sign::Positive, 0.5)),
        )
        .unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn union_find_push_grows_the_universe() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.push(), 0);
        assert_eq!(uf.push(), 1);
        assert_eq!(uf.len(), 2);
        assert_eq!(uf.component_count(), 2);
        assert!(uf.union(0, 1));
        assert_eq!(uf.component_count(), 1);
        let c = uf.push();
        assert_eq!(c, 2);
        assert_eq!(uf.component_count(), 2);
        assert!(!uf.connected(0, c));
        assert!(uf.union(c, 1));
        assert_eq!(uf.find(2), uf.find(0));
    }

    #[test]
    fn union_find_transitivity_over_long_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, 99));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
        let g = g(3, &[(0, 1), (2, 1)]);
        let comps = weakly_connected_components(&g);
        assert_eq!(comps, vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
    }

    #[test]
    fn multiple_components_sorted() {
        let g = g(6, &[(4, 5), (1, 0)]);
        let comps = weakly_connected_components(&g);
        assert_eq!(
            comps,
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2)],
                vec![NodeId(3)],
                vec![NodeId(4), NodeId(5)],
            ]
        );
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = g(0, &[]);
        assert!(weakly_connected_components(&g).is_empty());
    }

    #[test]
    fn cycle_is_one_component() {
        let g = g(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(weakly_connected_components(&g).len(), 1);
    }

    #[test]
    fn components_partition_the_node_set() {
        let g = g(8, &[(0, 3), (3, 6), (1, 2), (5, 7)]);
        let comps = weakly_connected_components(&g);
        let mut all: Vec<NodeId> = comps.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<NodeId> = g.nodes().collect();
        assert_eq!(all, expected);
    }
}
