//! Detector selection: the [`DetectorKind`] enum and the [`build`]
//! factory the engine, CLI and bench harness dispatch through.

use crate::error::DetectorError;
use crate::jordan::JordanCenter;
use crate::rid_family::{RidDetector, RidPositiveDetector, RidTreeDetector};
use crate::rumor::RumorCentralityDetector;
use crate::source::SourceDetector;
use isomit_core::RidConfig;
use serde::{Deserialize, Serialize};

/// Every detector the subsystem can build, by stable wire label.
///
/// Labels are part of the service protocol (the `rid` verb's `detector`
/// field) and of the `BENCH_detectors.json` schema; they never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// The paper's full RID framework (label `rid`).
    Rid,
    /// The RID-Tree baseline, §IV-B1 (label `rid_tree`).
    RidTree,
    /// The RID-Positive baseline, §IV-B1 (label `rid_positive`).
    RidPositive,
    /// Shah & Zaman rumor centrality (label `rumor_centrality`).
    RumorCentrality,
    /// Jordan / distance center (label `jordan_center`).
    JordanCenter,
}

impl DetectorKind {
    /// All kinds, in canonical (wire-label) order.
    pub const ALL: [DetectorKind; 5] = [
        DetectorKind::Rid,
        DetectorKind::RidTree,
        DetectorKind::RidPositive,
        DetectorKind::RumorCentrality,
        DetectorKind::JordanCenter,
    ];

    /// The stable wire label of this kind.
    pub fn as_label(self) -> &'static str {
        match self {
            DetectorKind::Rid => "rid",
            DetectorKind::RidTree => "rid_tree",
            DetectorKind::RidPositive => "rid_positive",
            DetectorKind::RumorCentrality => "rumor_centrality",
            DetectorKind::JordanCenter => "jordan_center",
        }
    }

    /// Resolves a wire label back to its kind.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::UnknownDetector`] (whose message lists
    /// every known label) if `label` matches no detector.
    pub fn from_label(label: &str) -> Result<Self, DetectorError> {
        DetectorKind::ALL
            .into_iter()
            .find(|k| k.as_label() == label)
            .ok_or_else(|| DetectorError::UnknownDetector {
                name: label.to_string(),
            })
    }

    /// Every known wire label, in canonical order — for error messages
    /// and protocol documentation.
    pub fn known_labels() -> [&'static str; 5] {
        [
            DetectorKind::Rid.as_label(),
            DetectorKind::RidTree.as_label(),
            DetectorKind::RidPositive.as_label(),
            DetectorKind::RumorCentrality.as_label(),
            DetectorKind::JordanCenter.as_label(),
        ]
    }
}

/// Builds a boxed detector of the given kind.
///
/// The RID family reads `alpha` / `beta` / objective / external-support
/// from `config`; the centrality estimators are parameter-free and
/// ignore it.
///
/// # Errors
///
/// Returns [`DetectorError::Rid`] if `config` is invalid for the
/// requested RID-family detector (e.g. `alpha < 1`).
///
/// # Examples
///
/// ```
/// use isomit_core::RidConfig;
/// use isomit_detectors::{build, DetectorKind};
///
/// let detector = build(DetectorKind::JordanCenter, &RidConfig::default()).unwrap();
/// assert_eq!(detector.name(), "Jordan-Center");
///
/// let bad = RidConfig {
///     alpha: 0.5,
///     ..RidConfig::default()
/// };
/// assert!(build(DetectorKind::Rid, &bad).is_err());
/// ```
pub fn build(
    kind: DetectorKind,
    config: &RidConfig,
) -> Result<Box<dyn SourceDetector>, DetectorError> {
    Ok(match kind {
        DetectorKind::Rid => Box::new(RidDetector::from_config(config)?),
        DetectorKind::RidTree => Box::new(RidTreeDetector::from_config(config)?),
        DetectorKind::RidPositive => Box::new(RidPositiveDetector::new()),
        DetectorKind::RumorCentrality => Box::new(RumorCentralityDetector::new()),
        DetectorKind::JordanCenter => Box::new(JordanCenter::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in DetectorKind::ALL {
            assert_eq!(DetectorKind::from_label(kind.as_label()), Ok(kind));
        }
    }

    #[test]
    fn unknown_label_is_rejected() {
        match DetectorKind::from_label("bogus") {
            Err(DetectorError::UnknownDetector { name }) => assert_eq!(name, "bogus"),
            other => panic!("expected UnknownDetector, got {other:?}"),
        }
    }

    #[test]
    fn known_labels_match_all() {
        let labels = DetectorKind::known_labels();
        assert_eq!(labels.len(), DetectorKind::ALL.len());
        for (kind, label) in DetectorKind::ALL.into_iter().zip(labels) {
            assert_eq!(kind.as_label(), label);
        }
    }

    #[test]
    fn build_produces_every_kind() {
        let config = RidConfig::default();
        for kind in DetectorKind::ALL {
            let detector = build(kind, &config).expect("default config builds every detector");
            assert!(!detector.name().is_empty());
        }
    }
}
