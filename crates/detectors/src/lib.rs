//! # isomit-detectors — the source-detector subsystem
//!
//! A shared [`SourceDetector`] trait over every rumor-source estimator
//! the workspace ships, so the serving engine, the CLI and the bench
//! harness can treat "which detector" as data instead of code. The
//! trait consumes an [`InfectedNetwork`] snapshot and produces a
//! [`SourceDetection`]: the familiar [`Detection`] set (compatible with
//! the `RidResult` wire shape) plus a full ranked candidate list for
//! rank-of-true-source evaluation.
//!
//! Five detectors are provided, selected by [`DetectorKind`]:
//!
//! * **RID** ([`RidDetector`]) — the paper's full framework, dispatched
//!   through the two-stage pipeline and bit-identical to
//!   `Rid::detect`.
//! * **RID-Tree** / **RID-Positive** ([`RidTreeDetector`],
//!   [`RidPositiveDetector`]) — the paper's §IV-B1 baselines, wrapped
//!   unchanged.
//! * **Rumor centrality** ([`RumorCentralityDetector`]) — the
//!   message-passing BFS-tree estimator of Shah & Zaman, "Rumors in a
//!   Network: Who's the Culprit?" (arXiv:0909.4370, IEEE Trans. IT
//!   2011): per infected component, score every node by the log count
//!   of infection orderings it could have initiated on a BFS spanning
//!   tree.
//! * **Jordan center** ([`JordanCenter`]) — the distance-center
//!   estimator family surveyed by Jin & Wu, "Schemes of Propagation
//!   Models and Source Estimators for Rumor Source Detection in Online
//!   Social Networks" (arXiv:2101.00753): per infected component, pick
//!   the node minimizing eccentricity over the undirected infected
//!   subgraph.
//!
//! All detectors are deterministic (no RNG, ordered collections only),
//! return `Result`, and time themselves into the process-global
//! telemetry registry like the RID stages do.
//!
//! # Examples
//!
//! Run two estimators on a 5-path infected end-to-end — rumor
//! centrality and Jordan center both recover the path's center:
//!
//! ```
//! use isomit_detectors::{build, DetectorKind};
//! use isomit_core::RidConfig;
//! use isomit_diffusion::InfectedNetwork;
//! use isomit_graph::{Edge, NodeId, NodeState, Sign, SignedDigraph};
//!
//! let g = SignedDigraph::from_edges(
//!     5,
//!     (0..4).map(|i| Edge::new(NodeId(i), NodeId(i + 1), Sign::Positive, 0.5)),
//! )
//! .unwrap();
//! let snapshot = InfectedNetwork::from_parts(g, vec![NodeState::Positive; 5]);
//!
//! let config = RidConfig::default();
//! for kind in [DetectorKind::RumorCentrality, DetectorKind::JordanCenter] {
//!     let detector = build(kind, &config).unwrap();
//!     let found = detector.detect_sources(&snapshot).unwrap();
//!     assert_eq!(found.detection.nodes(), vec![NodeId(2)]);
//!     assert_eq!(found.rank_of(NodeId(2)), Some(1));
//!     assert_eq!(found.ranked.len(), 5);
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
mod jordan;
mod kind;
mod rid_family;
mod rumor;
mod source;

pub use error::DetectorError;
pub use jordan::JordanCenter;
pub use kind::{build, DetectorKind};
pub use rid_family::{RidDetector, RidPositiveDetector, RidTreeDetector};
pub use rumor::RumorCentralityDetector;
pub use source::{RankedSource, SourceDetection, SourceDetector};

// Re-exported so downstream callers can name the trait's input/output
// types without an extra direct dependency.
pub use isomit_core::Detection;
pub use isomit_diffusion::InfectedNetwork;
