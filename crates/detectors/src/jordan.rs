//! Jordan (distance) center as a ranked [`SourceDetector`].
//!
//! The distance-center estimator family surveyed by Jin & Wu, "Schemes
//! of Propagation Models and Source Estimators for Rumor Source
//! Detection in Online Social Networks" (arXiv:2101.00753): the source
//! estimate of an infected component is its **Jordan center**, the node
//! minimizing eccentricity (maximum hop distance to any other infected
//! node) over the undirected infected subgraph. The intuition is that a
//! rumor spreading roughly one hop per step leaves its origin near the
//! hop-distance center of the infected set.

use crate::error::DetectorError;
use crate::source::{sort_ranked, RankedSource, SourceDetection, SourceDetector};
use isomit_core::{DetectedInitiator, Detection};
use isomit_diffusion::InfectedNetwork;
use isomit_forest::weakly_connected_components;
use isomit_graph::NodeId;
use isomit_telemetry::{names, Histogram};
use std::collections::{BTreeMap, VecDeque};
use std::sync::OnceLock;

/// Cached handle into the process-global telemetry registry; looked up
/// once so the hot path pays one pointer load, not a map lookup.
fn jordan_histogram() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| isomit_telemetry::global().histogram(names::DETECTOR_JORDAN_CENTER_NS))
}

/// Hop distances from `start` over a component-local undirected
/// adjacency list; every node of a weak component is reachable, so the
/// maximum entry is `start`'s eccentricity.
fn eccentricity(adj: &[Vec<usize>], start: usize) -> usize {
    let mut dist = vec![usize::MAX; adj.len()];
    *dist.get_mut(start).expect("start is a component-local id") = 0;
    let mut queue = VecDeque::from([start]);
    let mut farthest = 0usize;
    while let Some(u) = queue.pop_front() {
        let du = *dist.get(u).expect("queue holds component-local ids");
        farthest = farthest.max(du);
        for &v in adj.get(u).expect("adjacency covers the component") {
            let dv = dist
                .get_mut(v)
                .expect("adjacency entries are component-local ids");
            if *dv == usize::MAX {
                *dv = du + 1;
                queue.push_back(v);
            }
        }
    }
    farthest
}

/// The Jordan-center estimator: one point-estimate source per infected
/// weakly-connected component (the node of minimum eccentricity over
/// the undirected infected subgraph, smallest snapshot id on ties),
/// every node ranked by `-eccentricity`.
///
/// Signs, link directions and weights are ignored — this is the
/// classic unsigned distance-center baseline, provided for the
/// detector bakeoff. Deterministic and parameter-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JordanCenter {
    _private: (),
}

impl JordanCenter {
    /// Creates the parameter-free detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SourceDetector for JordanCenter {
    fn name(&self) -> String {
        "Jordan-Center".to_string()
    }

    fn detect_sources(&self, snapshot: &InfectedNetwork) -> Result<SourceDetection, DetectorError> {
        let _span = jordan_histogram().span();
        let graph = snapshot.graph();
        let components = weakly_connected_components(graph);
        let mut initiators = Vec::with_capacity(components.len());
        let mut ranked = Vec::with_capacity(graph.node_count());
        for component in &components {
            let local_of: BTreeMap<NodeId, usize> =
                component.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let adj: Vec<Vec<usize>> = component
                .iter()
                .map(|&u| {
                    graph
                        .out_neighbors(u)
                        .iter()
                        .chain(graph.in_neighbors(u))
                        .filter_map(|v| local_of.get(v).copied())
                        .collect()
                })
                .collect();
            let eccs: Vec<usize> = (0..component.len())
                .map(|v| eccentricity(&adj, v))
                .collect();
            let (best_sub_id, _) = component
                .iter()
                .zip(eccs.iter())
                .min_by_key(|&(&sub_id, &ecc)| (ecc, sub_id))
                .expect("non-empty component");
            initiators.push(DetectedInitiator {
                node: snapshot
                    .mapping()
                    .to_original(*best_sub_id)
                    .expect("snapshot id maps to original network"),
                state: snapshot.state(*best_sub_id),
            });
            for (&sub_id, &ecc) in component.iter().zip(eccs.iter()) {
                ranked.push(RankedSource {
                    node: snapshot
                        .mapping()
                        .to_original(sub_id)
                        .expect("snapshot id maps to original network"),
                    state: snapshot.state(sub_id),
                    score: -(ecc as f64),
                });
            }
        }
        sort_ranked(&mut ranked);
        initiators.sort_by_key(|d| d.node);
        Ok(SourceDetection {
            detection: Detection {
                initiators,
                component_count: components.len(),
                tree_count: components.len(),
                objective: 0.0,
            },
            ranked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_graph::{Edge, NodeState, Sign, SignedDigraph};

    fn snapshot(edges: &[(u32, u32)], n: usize) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b), Sign::Positive, 0.5)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive; n])
    }

    #[test]
    fn path_center_is_the_jordan_center() {
        let s = snapshot(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
        let found = JordanCenter::new().detect_sources(&s).unwrap();
        assert_eq!(found.detection.nodes(), vec![NodeId(2)]);
        assert_eq!(found.rank_of(NodeId(2)), Some(1));
        // Center has eccentricity 2, ends 4.
        assert_eq!(found.ranked.first().map(|c| c.score), Some(-2.0));
    }

    #[test]
    fn direction_is_ignored() {
        let a = JordanCenter::new()
            .detect_sources(&snapshot(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5))
            .unwrap();
        let b = JordanCenter::new()
            .detect_sources(&snapshot(&[(1, 0), (2, 1), (3, 2), (4, 3)], 5))
            .unwrap();
        assert_eq!(a.detection.nodes(), b.detection.nodes());
    }

    #[test]
    fn one_center_per_component_with_tie_breaking() {
        // Two 2-cliques: all nodes tie at eccentricity 1 inside each
        // component, so the smallest id of each component wins.
        let s = snapshot(&[(0, 1), (2, 3)], 4);
        let found = JordanCenter::new().detect_sources(&s).unwrap();
        assert_eq!(found.detection.nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(found.detection.component_count, 2);
        assert_eq!(found.ranked.len(), 4);
    }

    #[test]
    fn star_hub_is_the_center() {
        let s = snapshot(&[(0, 1), (0, 2), (0, 3), (0, 4)], 5);
        let found = JordanCenter::new().detect_sources(&s).unwrap();
        assert_eq!(found.detection.nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn deterministic_across_runs() {
        let s = snapshot(&[(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)], 5);
        let d = JordanCenter::new();
        assert_eq!(d.detect_sources(&s).unwrap(), d.detect_sources(&s).unwrap());
    }
}
