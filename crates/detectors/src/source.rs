//! The [`SourceDetector`] trait and its output types.

use crate::error::DetectorError;
use isomit_core::Detection;
use isomit_diffusion::InfectedNetwork;
use isomit_graph::{NodeId, NodeState};
use serde::{Deserialize, Serialize};

/// One candidate source in a detector's ranked output: identity (in
/// **original-network** ids), the state the detector associates with
/// it, and the detector-specific score that produced its rank.
///
/// Scores are only comparable *within* one detection run (and, for the
/// per-component estimators, only within one component — the list is
/// still totally ordered by score for determinism). Higher is better.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedSource {
    /// Candidate id in the original diffusion network.
    pub node: NodeId,
    /// Inferred (or observed) state of the candidate.
    pub state: NodeState,
    /// Detector-specific score; higher ranks earlier.
    pub score: f64,
}

/// The output of a [`SourceDetector`]: the point estimate as a
/// [`Detection`] (the exact shape the `RidResult` wire format carries)
/// plus the full ranked candidate list behind it.
///
/// Set-style detectors (the RID family) return `ranked` equal to their
/// detected set — they commit to a set, not an ordering, so every
/// member carries score `0.0` in `Detection` order. Score-style
/// detectors (rumor centrality, Jordan center) rank **every** node of
/// the snapshot, descending by score with ascending node id as the
/// tie-break.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceDetection {
    /// The point estimate, compatible with `RidResult`.
    pub detection: Detection,
    /// All scored candidates, best first.
    pub ranked: Vec<RankedSource>,
}

impl SourceDetection {
    /// 1-based rank of `node` (original-network id) in the candidate
    /// list, `None` if the detector never scored it.
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        self.ranked
            .iter()
            .position(|c| c.node == node)
            .map(|i| i + 1)
    }
}

/// A rumor-source detection algorithm over an infected-snapshot
/// observation.
///
/// Object-safe by design: the serving engine, CLI and bench harness
/// hold `Box<dyn SourceDetector>` built by [`crate::build`] and treat
/// the choice of estimator as data. Implementations must be
/// deterministic — same snapshot, same output, bit for bit, regardless
/// of thread count.
pub trait SourceDetector: std::fmt::Debug + Send + Sync {
    /// Human-readable detector name (matches the legacy
    /// `InitiatorDetector::name` for wrapped detectors).
    fn name(&self) -> String;

    /// Runs the detector on `snapshot`.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError`] if the underlying estimator rejects
    /// the input (today only the RID family can fail, with
    /// [`DetectorError::Rid`]).
    fn detect_sources(&self, snapshot: &InfectedNetwork) -> Result<SourceDetection, DetectorError>;
}

/// Ranked view of a set-style detection: the detected initiators in
/// `Detection` order, all at score `0.0`.
pub(crate) fn ranked_from_set(detection: Detection) -> SourceDetection {
    let ranked = detection
        .initiators
        .iter()
        .map(|d| RankedSource {
            node: d.node,
            state: d.state,
            score: 0.0,
        })
        .collect();
    SourceDetection { detection, ranked }
}

/// Deterministic rank order for score-style detectors: descending
/// score, ascending node id on ties.
pub(crate) fn sort_ranked(ranked: &mut [RankedSource]) {
    ranked.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.node.cmp(&b.node))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_is_one_based() {
        let ranked = vec![
            RankedSource {
                node: NodeId(7),
                state: NodeState::Positive,
                score: 2.0,
            },
            RankedSource {
                node: NodeId(3),
                state: NodeState::Negative,
                score: 1.0,
            },
        ];
        let sd = SourceDetection {
            detection: Detection {
                initiators: Vec::new(),
                component_count: 1,
                tree_count: 1,
                objective: 0.0,
            },
            ranked,
        };
        assert_eq!(sd.rank_of(NodeId(7)), Some(1));
        assert_eq!(sd.rank_of(NodeId(3)), Some(2));
        assert_eq!(sd.rank_of(NodeId(0)), None);
    }

    #[test]
    fn sort_ranked_breaks_ties_by_node_id() {
        let mut ranked = vec![
            RankedSource {
                node: NodeId(9),
                state: NodeState::Positive,
                score: 1.0,
            },
            RankedSource {
                node: NodeId(1),
                state: NodeState::Positive,
                score: 1.0,
            },
            RankedSource {
                node: NodeId(5),
                state: NodeState::Positive,
                score: 3.0,
            },
        ];
        sort_ranked(&mut ranked);
        let ids: Vec<_> = ranked.iter().map(|c| c.node).collect();
        assert_eq!(ids, vec![NodeId(5), NodeId(1), NodeId(9)]);
    }
}
