//! Rumor centrality as a ranked [`SourceDetector`].
//!
//! Shah & Zaman, "Rumors in a Network: Who's the Culprit?"
//! (arXiv:0909.4370, IEEE Trans. IT 2011): for a tree rooted at `v`,
//! `R(v) = n! / Π_u T_u^v` counts the infection orderings `v` could
//! have initiated; on general graphs the standard heuristic applies the
//! tree formula to a BFS spanning tree of each infected component. The
//! log-space message-passing sweep lives in
//! [`isomit_core::tree_rumor_centralities`]; this detector adds the
//! full per-node ranking the legacy `RumorCentrality` baseline throws
//! away, while keeping its point estimate bit-identical to that
//! baseline (one argmax per component, same tie-breaking).

use crate::error::DetectorError;
use crate::source::{sort_ranked, RankedSource, SourceDetection, SourceDetector};
use isomit_core::{tree_rumor_centralities, DetectedInitiator, Detection};
use isomit_diffusion::InfectedNetwork;
use isomit_forest::weakly_connected_components;
use isomit_graph::{NodeId, SignedDigraph};
use isomit_telemetry::{names, Histogram};
use std::collections::{BTreeMap, VecDeque};
use std::sync::OnceLock;

/// Cached handle into the process-global telemetry registry; looked up
/// once so the hot path pays one pointer load, not a map lookup.
fn rumor_histogram() -> &'static Histogram {
    static HIST: OnceLock<Histogram> = OnceLock::new();
    HIST.get_or_init(|| isomit_telemetry::global().histogram(names::DETECTOR_RUMOR_CENTRALITY_NS))
}

/// BFS spanning tree (undirected view) of the subgraph induced by
/// `component`, as parent pointers over component-local indices.
///
/// Mirrors the legacy baseline's traversal exactly — same start node,
/// same neighbor order — so the per-node centralities, and therefore
/// the per-component argmax, agree bit for bit.
fn bfs_spanning_tree(graph: &SignedDigraph, component: &[NodeId]) -> Vec<usize> {
    let local_of: BTreeMap<NodeId, usize> =
        component.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut parent = vec![usize::MAX; component.len()];
    let mut visited = vec![false; component.len()];
    if let Some(first) = visited.first_mut() {
        *first = true;
    }
    let mut queue = VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        let u_id = *component
            .get(u)
            .expect("queue holds component-local indices");
        for &v_id in graph
            .out_neighbors(u_id)
            .iter()
            .chain(graph.in_neighbors(u_id))
        {
            if let Some(&v) = local_of.get(&v_id) {
                let seen = visited
                    .get_mut(v)
                    .expect("local ids are below component length");
                if !*seen {
                    *seen = true;
                    *parent
                        .get_mut(v)
                        .expect("local ids are below component length") = u;
                    queue.push_back(v);
                }
            }
        }
    }
    parent
}

/// The rumor-centrality estimator with a full per-node ranking: one
/// point-estimate source per infected weakly-connected component (the
/// estimator is inherently single-source), every node scored by its
/// log rumor centrality on a BFS spanning tree.
///
/// Scores are log-space and per-component scaled — comparable within a
/// component, not across components — but the global rank order is
/// still deterministic (descending score, ascending node id on ties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RumorCentralityDetector {
    _private: (),
}

impl RumorCentralityDetector {
    /// Creates the parameter-free detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SourceDetector for RumorCentralityDetector {
    fn name(&self) -> String {
        "Rumor-Centrality".to_string()
    }

    fn detect_sources(&self, snapshot: &InfectedNetwork) -> Result<SourceDetection, DetectorError> {
        let _span = rumor_histogram().span();
        let graph = snapshot.graph();
        let components = weakly_connected_components(graph);
        let mut initiators = Vec::with_capacity(components.len());
        let mut ranked = Vec::with_capacity(graph.node_count());
        for component in &components {
            let parent = bfs_spanning_tree(graph, component);
            let log_r = tree_rumor_centralities(&parent);
            let (best_sub_id, _) = component
                .iter()
                .zip(log_r.iter())
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty component");
            initiators.push(DetectedInitiator {
                node: snapshot
                    .mapping()
                    .to_original(*best_sub_id)
                    .expect("snapshot id maps to original network"),
                state: snapshot.state(*best_sub_id),
            });
            for (&sub_id, &score) in component.iter().zip(log_r.iter()) {
                ranked.push(RankedSource {
                    node: snapshot
                        .mapping()
                        .to_original(sub_id)
                        .expect("snapshot id maps to original network"),
                    state: snapshot.state(sub_id),
                    score,
                });
            }
        }
        sort_ranked(&mut ranked);
        initiators.sort_by_key(|d| d.node);
        Ok(SourceDetection {
            detection: Detection {
                initiators,
                component_count: components.len(),
                tree_count: components.len(),
                objective: 0.0,
            },
            ranked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_core::{InitiatorDetector, RumorCentrality};
    use isomit_graph::{Edge, NodeState, Sign};

    fn snapshot(edges: &[(u32, u32)], n: usize) -> InfectedNetwork {
        let g = SignedDigraph::from_edges(
            n,
            edges
                .iter()
                .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b), Sign::Positive, 0.5)),
        )
        .unwrap();
        InfectedNetwork::from_parts(g, vec![NodeState::Positive; n])
    }

    #[test]
    fn point_estimate_matches_legacy_baseline() {
        for edges in [
            vec![(0, 1), (1, 2), (2, 3), (3, 4)],
            vec![(0, 1), (0, 2), (0, 3), (2, 3)],
            vec![(0, 1), (2, 3)],
            vec![(1, 0), (2, 1), (3, 2), (4, 3)],
        ] {
            let n = 5;
            let s = snapshot(&edges, n);
            let legacy = RumorCentrality::new().detect(&s);
            let ranked = RumorCentralityDetector::new().detect_sources(&s).unwrap();
            assert_eq!(ranked.detection, legacy, "edges {edges:?}");
        }
    }

    #[test]
    fn path_center_ranks_first_and_all_nodes_are_ranked() {
        let s = snapshot(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
        let found = RumorCentralityDetector::new().detect_sources(&s).unwrap();
        assert_eq!(found.rank_of(NodeId(2)), Some(1));
        assert_eq!(found.ranked.len(), 5);
        // Symmetric path: ends score lowest.
        assert!(found.rank_of(NodeId(0)) > Some(2));
        assert!(found.rank_of(NodeId(4)) > Some(2));
    }

    #[test]
    fn deterministic_across_runs() {
        let s = snapshot(&[(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)], 5);
        let d = RumorCentralityDetector::new();
        let a = d.detect_sources(&s).unwrap();
        let b = d.detect_sources(&s).unwrap();
        assert_eq!(a, b);
    }
}
