//! Error type shared by every detector.

use crate::kind::DetectorKind;
use isomit_core::RidError;

/// Failure modes of a [`crate::SourceDetector`] run or construction.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorError {
    /// The wrapped RID-family estimator rejected its input or
    /// configuration.
    Rid(RidError),
    /// A detector was requested by a label no [`DetectorKind`] carries.
    UnknownDetector {
        /// The label that failed to resolve.
        name: String,
    },
}

impl std::fmt::Display for DetectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorError::Rid(e) => write!(f, "{e}"),
            DetectorError::UnknownDetector { name } => write!(
                f,
                "unknown detector `{name}` (known: {})",
                DetectorKind::known_labels().join(", ")
            ),
        }
    }
}

impl std::error::Error for DetectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectorError::Rid(e) => Some(e),
            DetectorError::UnknownDetector { .. } => None,
        }
    }
}

impl From<RidError> for DetectorError {
    fn from(e: RidError) -> Self {
        DetectorError::Rid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_detector_lists_known_labels() {
        let e = DetectorError::UnknownDetector {
            name: "bogus".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown detector `bogus`"), "{msg}");
        for label in DetectorKind::known_labels() {
            assert!(msg.contains(label), "missing {label} in {msg}");
        }
    }
}
