//! The paper's own estimators wrapped as [`SourceDetector`] instances.
//!
//! All three delegate to `isomit-core` unchanged, so their detections
//! are bit-identical to the legacy `InitiatorDetector` paths (pinned by
//! the golden fixtures and the `tests/detectors.rs` equivalence suite).
//! They are *set* detectors: the ranked list is the detected set itself
//! (see [`SourceDetection`] for the scoring convention).

use crate::error::DetectorError;
use crate::source::{ranked_from_set, SourceDetection, SourceDetector};
use isomit_core::{InitiatorDetector, Rid, RidConfig, RidPositive, RidTree};
use isomit_diffusion::InfectedNetwork;

/// The full RID framework behind the [`SourceDetector`] seam.
///
/// Dispatches through the two-stage pipeline (`extract_stage` +
/// `query_stage`), which is bit-identical to `Rid::detect` — the
/// telemetry spans of both stages fire exactly as in the legacy path.
#[derive(Debug, Clone, PartialEq)]
pub struct RidDetector {
    rid: Rid,
}

impl RidDetector {
    /// Builds the detector from a full RID configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::Rid`] if the configuration is invalid
    /// (`alpha` not finite or `< 1`, `beta` negative).
    pub fn from_config(config: &RidConfig) -> Result<Self, DetectorError> {
        Ok(RidDetector {
            rid: Rid::from_config(*config)?,
        })
    }
}

impl SourceDetector for RidDetector {
    fn name(&self) -> String {
        self.rid.name()
    }

    fn detect_sources(&self, snapshot: &InfectedNetwork) -> Result<SourceDetection, DetectorError> {
        let artifacts = self.rid.extract_stage(snapshot);
        let detection = self.rid.query_stage(snapshot, &artifacts)?;
        Ok(ranked_from_set(detection))
    }
}

/// The RID-Tree baseline (§IV-B1) behind the [`SourceDetector`] seam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RidTreeDetector {
    inner: RidTree,
}

impl RidTreeDetector {
    /// Builds the baseline from the configuration's `alpha` (the only
    /// parameter RID-Tree uses).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorError::Rid`] unless `alpha` is finite and
    /// `>= 1`.
    pub fn from_config(config: &RidConfig) -> Result<Self, DetectorError> {
        Ok(RidTreeDetector {
            inner: RidTree::new(config.alpha)?,
        })
    }
}

impl SourceDetector for RidTreeDetector {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn detect_sources(&self, snapshot: &InfectedNetwork) -> Result<SourceDetection, DetectorError> {
        Ok(ranked_from_set(self.inner.detect(snapshot)))
    }
}

/// The RID-Positive baseline (§IV-B1) behind the [`SourceDetector`]
/// seam. Parameter-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RidPositiveDetector {
    inner: RidPositive,
}

impl RidPositiveDetector {
    /// Creates the parameter-free baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SourceDetector for RidPositiveDetector {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn detect_sources(&self, snapshot: &InfectedNetwork) -> Result<SourceDetection, DetectorError> {
        Ok(ranked_from_set(self.inner.detect(snapshot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isomit_diffusion::{DiffusionModel, Mfc, SeedSet};
    use isomit_graph::{Edge, NodeId, Sign, SignedDigraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_snapshot() -> InfectedNetwork {
        let edges: Vec<Edge> = (0..14)
            .map(|i| {
                Edge::new(
                    NodeId(i),
                    NodeId(i + 1),
                    if i % 3 == 0 {
                        Sign::Negative
                    } else {
                        Sign::Positive
                    },
                    0.7,
                )
            })
            .collect();
        let g = SignedDigraph::from_edges(15, edges).unwrap();
        let seeds = SeedSet::single(NodeId(0), Sign::Positive);
        let cascade = Mfc::new(3.0)
            .unwrap()
            .simulate(&g, &seeds, &mut StdRng::seed_from_u64(11))
            .unwrap();
        InfectedNetwork::from_cascade(&g, &cascade)
    }

    #[test]
    fn dispatched_rid_equals_legacy_detect_bit_for_bit() {
        let snapshot = chain_snapshot();
        let config = RidConfig::default();
        let legacy = Rid::from_config(config).unwrap().detect(&snapshot);
        let dispatched = RidDetector::from_config(&config)
            .unwrap()
            .detect_sources(&snapshot)
            .unwrap();
        assert_eq!(dispatched.detection, legacy);
        assert_eq!(
            dispatched.detection.objective.to_bits(),
            legacy.objective.to_bits()
        );
    }

    #[test]
    fn dispatched_baselines_equal_legacy_detect() {
        let snapshot = chain_snapshot();
        let config = RidConfig::default();
        let tree = RidTreeDetector::from_config(&config)
            .unwrap()
            .detect_sources(&snapshot)
            .unwrap();
        assert_eq!(
            tree.detection,
            RidTree::new(config.alpha).unwrap().detect(&snapshot)
        );
        let positive = RidPositiveDetector::new()
            .detect_sources(&snapshot)
            .unwrap();
        assert_eq!(positive.detection, RidPositive::new().detect(&snapshot));
    }

    #[test]
    fn set_detectors_rank_their_detected_set() {
        let snapshot = chain_snapshot();
        let config = RidConfig::default();
        let found = RidDetector::from_config(&config)
            .unwrap()
            .detect_sources(&snapshot)
            .unwrap();
        let ranked_ids: Vec<NodeId> = found.ranked.iter().map(|c| c.node).collect();
        assert_eq!(ranked_ids, found.detection.nodes());
        assert!(found.ranked.iter().all(|c| c.score == 0.0));
    }

    #[test]
    fn invalid_config_is_reported_as_rid_error() {
        let bad = RidConfig {
            alpha: 0.0,
            ..RidConfig::default()
        };
        assert!(matches!(
            RidDetector::from_config(&bad),
            Err(DetectorError::Rid(_))
        ));
        assert!(matches!(
            RidTreeDetector::from_config(&bad),
            Err(DetectorError::Rid(_))
        ));
    }
}
