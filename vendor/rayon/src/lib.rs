//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon),
//! implementing the API subset this workspace uses on top of
//! `std::thread::scope` with atomic chunk stealing.
//!
//! The build environment cannot reach a crates.io registry, so this
//! vendored crate keeps the module paths of the real crate
//! (`rayon::prelude::*`, [`ThreadPoolBuilder`], [`current_num_threads`],
//! [`join`]) so that swapping in upstream rayon later is a one-line
//! `Cargo.toml` change.
//!
//! # Determinism contract
//!
//! Work is split into **fixed chunks whose boundaries depend only on the
//! item count** — never on the number of worker threads — and workers
//! steal whole chunks off a shared atomic counter:
//!
//! * [`ParallelIterator::collect`] and
//!   [`ParallelIterator::reduce`] place or combine chunk results **in
//!   chunk order**, so their output is identical for every thread count
//!   (including 1) and every scheduling interleaving.
//! * [`ParallelIterator::fold_reduce`] keeps one accumulator per worker
//!   and merges the per-worker accumulators at the end; its result is
//!   schedule-independent **only when `merge` is commutative and
//!   associative** (exactly true for the integer tallies the
//!   Monte-Carlo estimator merges; float summation should use `reduce`
//!   or `collect` + a sequential fold instead).
//!
//! Thread count resolution order: [`ThreadPool::install`] override →
//! [`ThreadPoolBuilder::build_global`] → the `RAYON_NUM_THREADS`
//! environment variable → `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static GLOBAL_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static INSTALL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
}

/// Number of worker threads parallel operations currently use.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALL_OVERRIDE.with(|c| c.get()) {
        return n;
    }
    if let Some(&n) = GLOBAL_THREADS.get() {
        return n;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error returned when the global pool is configured twice.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the (virtual) thread pool, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means "automatic" (environment, then
    /// hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    fn resolve(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            env_threads().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
        }
    }

    /// Fixes the global worker count. Errors if already configured.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS
            .set(self.resolve())
            .map_err(|_| ThreadPoolBuildError {
                message: "the global thread pool has already been initialized",
            })
    }

    /// Builds a scoped pool handle whose [`ThreadPool::install`] runs a
    /// closure under a specific worker count.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.resolve(),
        })
    }
}

/// A handle fixing the worker count for closures run through
/// [`install`](ThreadPool::install).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count (parallel operations inside
    /// `f`, on this thread, use it instead of the global count).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALL_OVERRIDE.with(|c| c.replace(Some(self.threads)));
        let result = f();
        INSTALL_OVERRIDE.with(|c| c.set(prev));
        result
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon-shim join worker panicked");
        (ra, rb)
    })
}

/// Chunk size used to split `n` items, a function of `n` **only** so
/// that chunk boundaries (and therefore `reduce` grouping) are identical
/// for every thread count.
fn chunk_size(n: usize) -> usize {
    (n / 64).clamp(1, 8192)
}

/// Runs `work(chunk_index)` for every chunk index in `0..n_chunks`
/// across the current worker count, stealing chunks off a shared
/// counter. Results are returned sorted by chunk index.
fn run_chunks<T: Send>(
    n_chunks: usize,
    threads: usize,
    work: &(impl Fn(usize) -> T + Sync),
) -> Vec<T> {
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n_chunks));
    let workers = threads.min(n_chunks);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let value = work(c);
                results
                    .lock()
                    .expect("rayon-shim results mutex poisoned")
                    .push((c, value));
            });
        }
    });
    let mut parts = results
        .into_inner()
        .expect("rayon-shim results mutex poisoned");
    parts.sort_unstable_by_key(|&(c, _)| c);
    parts.into_iter().map(|(_, v)| v).collect()
}

/// The parallel-iterator trait: an indexed source of items plus the
/// consuming operations the workspace uses.
pub trait ParallelIterator: Sized + Send + Sync {
    /// The produced item type.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces item `index`. Must be pure: the engine may evaluate items
    /// in any order, on any worker.
    fn par_eval(&self, index: usize) -> Self::Item;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs items index-wise with `other` (truncating to the shorter).
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Consumes the iterator, calling `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let n = self.par_len();
        let chunk = chunk_size(n.max(1));
        let n_chunks = n.div_ceil(chunk.max(1));
        run_chunks(n_chunks, current_num_threads(), &|c| {
            let lo = c * chunk;
            let hi = n.min(lo + chunk);
            for i in lo..hi {
                f(self.par_eval(i));
            }
        });
    }

    /// Collects all items, in source order, into `C`.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Reduces items with `op`, starting each chunk from `identity()` and
    /// combining chunk partials **in chunk order** — deterministic for
    /// every thread count because chunk boundaries depend only on the
    /// item count.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let n = self.par_len();
        if n == 0 {
            return identity();
        }
        let chunk = chunk_size(n);
        let n_chunks = n.div_ceil(chunk);
        let partials = run_chunks(n_chunks, current_num_threads(), &|c| {
            let lo = c * chunk;
            let hi = n.min(lo + chunk);
            let mut acc = identity();
            for i in lo..hi {
                acc = op(acc, self.par_eval(i));
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Shim extension (upstream spelling: `.fold(init, fold).reduce(init,
    /// merge)`): folds items into one accumulator **per worker thread**
    /// and merges the per-worker accumulators at the end. Memory use is
    /// `O(threads)` accumulators instead of `O(chunks)`.
    ///
    /// Schedule-independent only when `merge` is commutative and
    /// associative (integer tallies: yes; float sums: use
    /// [`reduce`](ParallelIterator::reduce) instead).
    fn fold_reduce<A, INIT, FOLD, MERGE>(self, init: INIT, fold: FOLD, merge: MERGE) -> A
    where
        A: Send,
        INIT: Fn() -> A + Send + Sync,
        FOLD: Fn(A, Self::Item) -> A + Send + Sync,
        MERGE: Fn(A, A) -> A + Send + Sync,
    {
        let n = self.par_len();
        let threads = current_num_threads();
        if threads <= 1 || n <= 1 {
            return (0..n).fold(init(), |acc, i| fold(acc, self.par_eval(i)));
        }
        let chunk = chunk_size(n);
        let n_chunks = n.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let accs: Mutex<Vec<A>> = Mutex::new(Vec::new());
        let workers = threads.min(n_chunks);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut acc = init();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let lo = c * chunk;
                        let hi = n.min(lo + chunk);
                        for i in lo..hi {
                            acc = fold(acc, self.par_eval(i));
                        }
                    }
                    accs.lock()
                        .expect("rayon-shim accumulator mutex poisoned")
                        .push(acc);
                });
            }
        });
        accs.into_inner()
            .expect("rayon-shim accumulator mutex poisoned")
            .into_iter()
            .fold(init(), merge)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection, preserving source order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Vec<T> {
        let n = par.par_len();
        let chunk = chunk_size(n.max(1));
        let n_chunks = n.div_ceil(chunk.max(1));
        let parts = run_chunks(n_chunks, current_num_threads(), &|c| {
            let lo = c * chunk;
            let hi = n.min(lo + chunk);
            (lo..hi).map(|i| par.par_eval(i)).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn par_eval(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.par_eval(index), self.b.par_eval(index))
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_eval(&self, index: usize) -> R {
        (self.f)(self.base.par_eval(index))
    }
}

/// Parallel iterator over an integer range.
pub struct RangeParIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                self.len
            }
            fn par_eval(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;
            fn into_par_iter(self) -> RangeParIter<$t> {
                RangeParIter {
                    start: self.start,
                    len: (self.end.saturating_sub(self.start)) as usize,
                }
            }
        }
    )*};
}

impl_range_par_iter!(u32, u64, usize);

/// Parallel iterator borrowing a slice.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_eval(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The produced item type.
    type Item: Send;
    /// The concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { slice: self }
    }
}

/// The traits a parallel caller imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn collect_preserves_order_for_every_thread_count() {
        let expected: Vec<usize> = (0..10_000).map(|i| i * 3).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<usize> =
                pool(threads).install(|| (0..10_000usize).into_par_iter().map(|i| i * 3).collect());
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn reduce_grouping_is_thread_count_independent() {
        // Float addition is not associative, so identical results across
        // thread counts prove the chunk tree is fixed.
        let baseline: f64 = pool(1).install(|| {
            (0..5_000usize)
                .into_par_iter()
                .map(|i| 1.0 / (i as f64 + 1.0))
                .reduce(|| 0.0, |a, b| a + b)
        });
        for threads in [2, 5, 16] {
            let got: f64 = pool(threads).install(|| {
                (0..5_000usize)
                    .into_par_iter()
                    .map(|i| 1.0 / (i as f64 + 1.0))
                    .reduce(|| 0.0, |a, b| a + b)
            });
            assert_eq!(got.to_bits(), baseline.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn fold_reduce_matches_sequential_for_commutative_merge() {
        let baseline: u64 = (0..100_000u64).sum();
        for threads in [1, 4] {
            let got = pool(threads).install(|| {
                (0..100_000u64)
                    .into_par_iter()
                    .fold_reduce(|| 0u64, |a, i| a + i, |a, b| a + b)
            });
            assert_eq!(got, baseline, "threads={threads}");
        }
    }

    #[test]
    fn slice_par_iter_borrows() {
        let data: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[999], 1998);
        assert_eq!(doubled.len(), 1000);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        pool(4).install(|| {
            (0..2_345usize).into_par_iter().for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2_345);
    }

    #[test]
    fn install_override_nests_and_restores() {
        let outer = pool(3);
        let inner = pool(1);
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_range_is_fine() {
        let v: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let r = (5..5usize).into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(r, 7);
    }
}
