//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so this vendored crate re-implements exactly the API subset
//! the workspace uses, with matching module paths (`rand::Rng`,
//! `rand::rngs::StdRng`, `rand::seq::SliceRandom`, …). Swapping in the
//! real `rand` later only requires deleting the `[patch]`-style path
//! override in the workspace `Cargo.toml`.
//!
//! [`rngs::StdRng`] is a **xoshiro256++** generator seeded through
//! SplitMix64 — not the ChaCha12 generator the real crate uses, so raw
//! streams differ from upstream `rand`, but every consumer in this
//! workspace treats `StdRng` as an opaque deterministic stream, which
//! this crate guarantees: the same seed always produces the same stream,
//! on every platform.

/// The core trait every random-number generator implements.
///
/// Object-safe, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Uniform `f64` in `[0, 1)` using the 53-bit mantissa method.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that a uniform value can be sampled from (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer sampling in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection loop; the bias is
/// below 2^-64 per draw, irrelevant for simulation workloads).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + sample_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// A generator that can be reproducibly created from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// exactly like the real crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Same seed ⇒ same stream, on every platform and thread.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.step();
                for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = byte;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random-order operations to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(5..=5u32);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits} hits");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynref: &mut dyn RngCore = &mut rng;
        let x = dynref.next_u64();
        let _ = dynref.next_u32();
        let mut buf = [0u8; 5];
        dynref.fill_bytes(&mut buf);
        assert_ne!(x, 0);
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let (mut x, mut y) = ([0u8; 17], [0u8; 17]);
        a.fill_bytes(&mut x);
        b.fill_bytes(&mut y);
        assert_eq!(x, y);
    }
}
