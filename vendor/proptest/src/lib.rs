//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, implementing the API subset this workspace's
//! test suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter` /
//!   `prop_filter_map`, tuples of strategies up to arity 6, and integer /
//!   float range strategies,
//! * [`any`](fn@any) for primitives, [`collection::vec`] and
//!   [`collection::btree_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test name), there is
//! **no shrinking** (the failing input is printed in full instead), and
//! `.proptest-regressions` files are ignored. The `PROPTEST_CASES`
//! environment variable caps the number of cases exactly like upstream,
//! which CI uses to keep property runs fast.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case `case` of the test whose name hashes to `test_hash`.
    pub fn deterministic(test_hash: u64, case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            test_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value; `None` means the draw was rejected by a
    /// filter and the case should be retried.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values satisfying `pred` (rejections retry the case).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            _whence: whence,
            pred,
        }
    }

    /// Combined filter + map: `f` returning `None` rejects the draw.
    fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            base: self,
            _whence: whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.base.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let inner = (self.f)(self.base.generate(rng)?);
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    _whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    _whence: &'static str,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.base.generate(rng).and_then(&self.f)
    }
}

/// A strategy producing one fixed value (mirror of `proptest::prelude::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.0.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`](fn@any).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;

    /// Something usable as a collection size: a fixed `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `vec(element, 0..10)` or `vec(element, 12)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.size.sample(rng);
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                // Retry rejected elements a bounded number of times, like
                // upstream's local rejection handling.
                let mut ok = false;
                for _ in 0..100 {
                    if let Some(v) = self.element.generate(rng) {
                        out.push(v);
                        ok = true;
                        break;
                    }
                }
                if !ok {
                    return None;
                }
            }
            Some(out)
        }
    }

    /// Strategy for `BTreeMap` with `size` distinct keys.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy; the generated map has a size drawn from
    /// `size` when the key space allows it.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord + Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target {
                attempts += 1;
                if attempts > 100 * (target + 1) {
                    break; // Key space smaller than target; accept what we have.
                }
                let (Some(k), Some(v)) = (self.key.generate(rng), self.value.generate(rng)) else {
                    continue;
                };
                out.insert(k, v);
            }
            if out.len() >= self.size.lo {
                Some(out)
            } else {
                None
            }
        }
    }
}

#[doc(hidden)]
pub fn __resolve_cases(config_cases: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES={v:?} is not a number")),
        Err(_) => config_cases,
    }
}

#[doc(hidden)]
pub fn __hash_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn __generate_case<S: Strategy>(strategy: &S, rng: &mut TestRng) -> Option<S::Value> {
    for _ in 0..1_000 {
        if let Some(v) = strategy.generate(rng) {
            return Some(v);
        }
    }
    None
}

/// Mirrors `proptest::prop_assert!`: fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_eq!`: fails the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_ne!`: fails the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;
     $(#[test] fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = $crate::__resolve_cases(config.cases);
                let strategy = ($($strat,)+);
                let test_hash = $crate::__hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cases as u64 {
                    let mut rng = $crate::TestRng::deterministic(test_hash, case);
                    let Some(value) = $crate::__generate_case(&strategy, &mut rng) else {
                        continue; // every draw rejected; skip this case
                    };
                    let repr = format!("{:?}", value);
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                        let ($($pat,)+) = value;
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {case}/{cases} with input:\n  {repr}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// The `proptest!` macro: wraps `#[test] fn name(binding in strategy, …)`
/// items into seeded random-case runners.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3..10u32, y in 0.5f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=0.75).contains(&y));
        }

        #[test]
        fn tuples_and_patterns(((a, b), flag) in ((0..5usize, 5..9usize), any::<bool>())) {
            prop_assert!(a < 5 && (5..9).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes(v in collection::vec(0..100u32, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn filter_map_rejections_retry(x in (0..100u32).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn btree_map_reaches_target(m in collection::btree_map(0..50u32, any::<bool>(), 1..=4)) {
            prop_assert!((1..=4).contains(&m.len()));
        }
    }

    #[test]
    fn env_var_caps_cases() {
        // Not set in this process: config value wins.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::__resolve_cases(48), 48);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        use crate::Strategy;
        let strat = (0..1_000_000u64,);
        let mut a = crate::TestRng::deterministic(7, 3);
        let mut b = crate::TestRng::deterministic(7, 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
