//! Offline no-op stand-in for `serde`'s derive macros.
//!
//! This workspace's build environment cannot reach a crates.io registry,
//! so types keep their `#[derive(Serialize, Deserialize)]` annotations
//! (documenting serialization intent, and ready for the real `serde`
//! once a registry is available) while this crate expands them to
//! nothing. Actual serialization in the workspace is handled by the
//! hand-written JSON codec in `isomit-graph::json` and the SNAP/TSV
//! readers in `isomit-graph::io`.
//!
//! `#[serde(...)]` helper attributes (e.g. `#[serde(transparent)]`) are
//! accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted, expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted, expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
