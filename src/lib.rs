//! # isomit
//!
//! A from-scratch Rust reproduction of *Rumor Initiator Detection in
//! Infected Signed Networks* (Jiawei Zhang, Charu C. Aggarwal, Philip S.
//! Yu — ICDCS 2017): the **MFC** (asyMmetric Flipping Cascade) diffusion
//! model for signed networks and the **RID** (Rumor Initiator Detector)
//! framework that works backwards from an infected snapshot to the most
//! likely rumor initiators — their number, identities, and initial
//! states (the **ISOMIT** problem).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] — weighted signed digraphs, SNAP I/O, Jaccard weighting;
//! * [`diffusion`] — MFC plus the IC / LT / SIR / P-IC reference models;
//! * [`forest`] — components, Chu-Liu/Edmonds branchings, binarization;
//! * [`core`] — the RID detector, baselines, likelihood, NP-hardness
//!   apparatus;
//! * [`datasets`] — Epinions/Slashdot-like generators and the
//!   experiment scenario builder;
//! * [`metrics`] — precision/recall/F1 and state accuracy/MAE/R².
//!
//! # Quickstart
//!
//! ```
//! use isomit::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // 1. A small Epinions-like signed social network.
//! let social = epinions_like_scaled(0.005, &mut rng);
//! // 2. Plant initiators and simulate an MFC outbreak (paper §IV-B3).
//! let scenario = build_scenario(&social, &ScenarioConfig::small(), &mut rng);
//! // 3. Detect the initiators from the snapshot alone.
//! let detection = Rid::new(3.0, 0.1).unwrap().detect(&scenario.snapshot);
//! // 4. Score against the planted ground truth.
//! let truth: Vec<NodeId> = scenario.ground_truth.nodes().collect();
//! let prf = evaluate_identities(&detection.nodes(), &truth);
//! assert!(prf.recall > 0.0);
//! ```

#![deny(missing_docs)]

pub use isomit_core as core;
pub use isomit_datasets as datasets;
pub use isomit_diffusion as diffusion;
pub use isomit_forest as forest;
pub use isomit_graph as graph;
pub use isomit_metrics as metrics;

/// Convenience prelude pulling in the names used by a typical
/// simulate-then-detect experiment.
pub mod prelude {
    pub use isomit_core::{
        extract_cascade_forest, solve_k_isomit, Detection, InitiatorDetector, Rid, RidObjective,
        RidPositive, RidTree, RumorCentrality, TreeDp,
    };
    pub use isomit_datasets::{
        build_scenario, epinions_like, epinions_like_scaled, paper_weights, slashdot_like,
        slashdot_like_scaled, Scenario, ScenarioConfig,
    };
    pub use isomit_diffusion::{
        estimate_infection_probabilities, estimate_infection_probabilities_seeded,
        estimate_infection_probabilities_wide, par_estimate_infection_probabilities,
        par_estimate_infection_probabilities_wide, simulate_wide, simulate_wide_reference, Cascade,
        CascadeTimeline, DiffusionModel, IndependentCascade, InfectedNetwork, InfectionEstimate,
        LinearThreshold, Mfc, PolarityIc, SeedSet, Sir, WideBatch, WideSimulator,
    };
    pub use isomit_graph::{
        Edge, GraphStats, NodeId, NodeState, Sign, SignedDigraph, SignedDigraphBuilder,
    };
    pub use isomit_metrics::{
        evaluate_detection, evaluate_identities, mean_detection_distance, Prf, StateMetrics,
    };
}
