//! The single parse pass shared by every rule.
//!
//! Each source file is read and analyzed exactly once per lint run: the
//! [`crate::lexer`] produces the token stream, [`crate::items`] builds
//! the item tree, and this module derives the per-token context every
//! rule consumes — enclosing function, `#[cfg(test)]` scope — plus the
//! waiver inventory extracted from comment tokens. Rules (and the
//! cross-file taint analysis) all borrow the same [`ParsedFile`]; no
//! rule re-reads or re-tokenizes anything.

use crate::items::{self, Item, ItemKind};
use crate::lexer::{self, Token};

/// A fully analyzed source file: the unit every rule operates on.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path, used in diagnostics and crate scoping.
    pub path: String,
    /// The raw source text (token spans index into it).
    pub text: String,
    /// The complete token stream, comments included.
    pub tokens: Vec<Token>,
    /// The item tree.
    pub items: Vec<Item>,
    /// For each token: `true` if it sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// For each token: index into `items` of the innermost enclosing
    /// `fn`, if any.
    pub enclosing_fn: Vec<Option<usize>>,
    /// Every waiver comment found in the file, well-formed or not.
    pub waivers: Vec<Waiver>,
}

/// One `lint:allow(...)` / `lint:allow-file(...)` comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule the waiver names.
    pub rule: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// `true` for `lint:allow-file(...)`.
    pub file_scope: bool,
    /// Why the waiver is malformed, if it is.
    pub malformed: Option<String>,
}

impl ParsedFile {
    /// Lexes, parses and annotates one source file. This is the only
    /// entry point; it performs the full analysis in a single pass.
    pub fn parse(path: &str, text: &str) -> ParsedFile {
        let tokens = lexer::lex(text);
        let items = items::parse(text, &tokens);

        let mut in_test = vec![false; tokens.len()];
        let mut enclosing_fn: Vec<Option<usize>> = vec![None; tokens.len()];
        for (idx, item) in items.items_with_ranges(&tokens) {
            let (lo, hi) = idx;
            if item.cfg_test {
                for f in in_test.iter_mut().take(hi.min(tokens.len())).skip(lo) {
                    *f = true;
                }
            }
        }
        for (i, item) in items.iter().enumerate() {
            if item.kind == ItemKind::Fn {
                if let Some((lo, hi)) = item.body {
                    for slot in enclosing_fn.iter_mut().take(hi.min(tokens.len())).skip(lo) {
                        *slot = Some(i);
                    }
                }
            }
        }

        let waivers = collect_waivers(text, &tokens);
        ParsedFile {
            path: path.to_owned(),
            text: text.to_owned(),
            tokens,
            items,
            in_test,
            enclosing_fn,
            waivers,
        }
    }

    /// The token's text.
    pub fn token_text(&self, i: usize) -> &str {
        self.tokens.get(i).map(|t| t.text(&self.text)).unwrap_or("")
    }

    /// Index of the previous non-comment token before `i`.
    pub fn prev_sig(&self, i: usize) -> Option<usize> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            if !self.tokens.get(j)?.is_comment() {
                return Some(j);
            }
        }
        None
    }

    /// Index of the next non-comment token after `i`.
    pub fn next_sig(&self, i: usize) -> Option<usize> {
        let mut j = i + 1;
        while let Some(t) = self.tokens.get(j) {
            if !t.is_comment() {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// Whether the file is a binary target (`src/bin/**` or `main.rs`):
    /// fail-fast process entry points, not library code.
    pub fn is_bin_target(&self) -> bool {
        self.path.contains("/src/bin/") || self.path.ends_with("/main.rs")
    }

    /// The innermost enclosing fn item of token `i`, if any.
    pub fn fn_of(&self, i: usize) -> Option<&Item> {
        self.enclosing_fn
            .get(i)
            .copied()
            .flatten()
            .and_then(|idx| self.items.get(idx))
    }
}

/// Extension helpers over the item list.
trait ItemRanges {
    fn items_with_ranges<'a>(&'a self, tokens: &[Token]) -> Vec<((usize, usize), &'a Item)>;
}

impl ItemRanges for Vec<Item> {
    /// Pairs each item with a conservative token range covering it: the
    /// body range when present, widened to start at the declaration line
    /// (so signature tokens of a `#[cfg(test)]` fn are covered too).
    fn items_with_ranges<'a>(&'a self, tokens: &[Token]) -> Vec<((usize, usize), &'a Item)> {
        self.iter()
            .map(|item| {
                let (lo, hi) = match item.body {
                    Some((lo, hi)) => (lo, hi),
                    None => (0, 0),
                };
                // Widen backwards to the declaration line so the item
                // header (attributes, signature) is covered as well.
                let mut start = lo;
                while start > 0 {
                    match tokens.get(start - 1) {
                        Some(t) if t.line >= item.line => start -= 1,
                        _ => break,
                    }
                }
                ((start, hi), item)
            })
            .collect()
    }
}

fn collect_waivers(src: &str, tokens: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let comment = t.text(src);
        for (marker, file_scope) in [("lint:allow-file(", true), ("lint:allow(", false)] {
            let Some(start) = comment.find(marker) else {
                continue;
            };
            let rest = &comment[start + marker.len()..];
            let Some(close) = rest.find(')') else {
                out.push(Waiver {
                    rule: String::new(),
                    line: t.line,
                    file_scope,
                    malformed: Some("missing `)`".to_owned()),
                });
                break;
            };
            let rule = rest[..close].trim().to_owned();
            let reason = rest[close + 1..].trim();
            let malformed = if !crate::rules::RULES.iter().any(|r| r.name == rule)
                || rule == "waiver"
                || rule == "dead-waiver"
            {
                Some(format!("unknown rule `{rule}`"))
            } else if reason.is_empty() {
                Some("waiver has no reason".to_owned())
            } else {
                None
            };
            out.push(Waiver {
                rule,
                line: t.line,
                file_scope,
                malformed,
            });
            break; // one waiver per comment token
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_test_covers_cfg_test_subtrees() {
        let src =
            "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\n";
        let f = ParsedFile::parse("crates/graph/src/a.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text(src) == "unwrap")
            .map(|(i, _)| f.in_test[i])
            .collect();
        assert_eq!(unwraps, [false, true]);
    }

    #[test]
    fn enclosing_fn_maps_body_tokens() {
        let src = "/// # Panics\npub fn documented(v: &[u8]) -> u8 { v[0] }\nfn other() {}\n";
        let f = ParsedFile::parse("crates/graph/src/a.rs", src);
        let bracket = f
            .tokens
            .iter()
            .position(|t| t.text(src) == "[" && t.line == 2)
            .unwrap();
        // `v[0]` is on line 2 — but the first `[` on line 2 is the
        // parameter type; find the one inside the body instead.
        let body_bracket = (bracket..f.tokens.len())
            .filter(|&i| f.token_text(i) == "[")
            .find(|&i| f.fn_of(i).is_some())
            .unwrap();
        assert_eq!(f.fn_of(body_bracket).unwrap().name, "documented");
        assert!(f.fn_of(body_bracket).unwrap().has_panics_doc());
    }

    #[test]
    fn waivers_are_collected_with_scope_and_malformedness() {
        let src = "// lint:allow-file(indexing) kernel bounds argument\nfn f() {\n  x.unwrap(); // lint:allow(panic) infallible: checked\n  // lint:allow(panic)\n  // lint:allow(bogus) reason\n}\n";
        let f = ParsedFile::parse("crates/graph/src/a.rs", src);
        assert_eq!(f.waivers.len(), 4);
        assert!(f.waivers[0].file_scope);
        assert!(f.waivers[0].malformed.is_none());
        assert_eq!(f.waivers[1].line, 3);
        assert_eq!(
            f.waivers[2].malformed.as_deref(),
            Some("waiver has no reason")
        );
        assert_eq!(
            f.waivers[3].malformed.as_deref(),
            Some("unknown rule `bogus`")
        );
    }

    #[test]
    fn bin_targets_are_recognized() {
        assert!(ParsedFile::parse("crates/bench/src/bin/fig4.rs", "").is_bin_target());
        assert!(ParsedFile::parse("crates/x/src/main.rs", "").is_bin_target());
        assert!(!ParsedFile::parse("crates/graph/src/lib.rs", "").is_bin_target());
    }
}
