//! Lexical pre-processing of Rust sources.
//!
//! The lint pass deliberately avoids a full parser (`syn` is unavailable
//! offline and overkill for line-oriented rules). Instead, a small state
//! machine classifies every byte of a source file as *code*, *comment*,
//! *doc comment* or *string/char literal*, producing per-line views:
//!
//! * [`Line::code`] — the line with everything that is not code blanked
//!   out by spaces (so column positions survive);
//! * [`Line::comment`] — the concatenated comment text of the line (used
//!   for waiver extraction);
//! * [`Line::is_doc`] — whether the line carries a doc comment (`///`,
//!   `//!`, `/** .. */`), whose embedded examples must never be linted;
//! * [`Line::in_test`] — whether the line sits inside a
//!   `#[cfg(test)]`-gated item (test modules are exempt from most rules).

/// One pre-processed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code-only view: every non-code byte replaced by a space.
    pub code: String,
    /// Comment text (excluding the `//` / `/*` markers), doc or not.
    pub comment: String,
    /// `true` if any part of the line is a doc comment.
    pub is_doc: bool,
    /// `true` if the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A fully pre-processed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, used in diagnostics.
    pub path: String,
    /// 0-indexed lines; diagnostics report `index + 1`.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment { doc: bool },
    BlockComment { doc: bool, depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Splits `text` into classified lines. This is the only place that has
/// to understand Rust's string/comment syntax.
pub fn preprocess(path: &str, text: &str) -> SourceFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut is_doc = false;
    let mut state = State::Code;

    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    macro_rules! flush_line {
        () => {{
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                is_doc,
                in_test: false,
            });
            is_doc = matches!(
                state,
                State::BlockComment { doc: true, .. } | State::LineComment { doc: true }
            );
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let State::LineComment { .. } = state {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // `///` (outer doc), `//!` (inner doc) or plain `//`.
                    // `////...` is a plain comment by the reference.
                    let c2 = chars.get(i + 2).copied();
                    let doc = (c2 == Some('/') && chars.get(i + 3).copied() != Some('/'))
                        || c2 == Some('!');
                    state = State::LineComment { doc };
                    is_doc |= doc;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    let c2 = chars.get(i + 2).copied();
                    let doc = (c2 == Some('*') && chars.get(i + 3).copied() != Some('*'))
                        || c2 == Some('!');
                    state = State::BlockComment { doc, depth: 1 };
                    is_doc |= doc;
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    i += 1;
                    continue;
                }
                // Raw (byte) strings: r"..."  r#"..."#  br##"..."## etc.
                if c == 'r' || (c == 'b' && next == Some('r')) {
                    let start = if c == 'b' { i + 2 } else { i + 1 };
                    let mut j = start;
                    while chars.get(j).copied() == Some('#') {
                        j += 1;
                    }
                    if chars.get(j).copied() == Some('"') {
                        for _ in i..=j {
                            code.push(' ');
                        }
                        state = State::RawStr { hashes: j - start };
                        i = j + 1;
                        continue;
                    }
                }
                if c == 'b' && next == Some('"') {
                    code.push(' ');
                    code.push(' ');
                    state = State::Str;
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    // Distinguish a char literal from a lifetime: `'x'` or
                    // `'\...'` is a literal; `'ident` (no closing quote
                    // right after one char) is a lifetime and stays code.
                    if next == Some('\\') || chars.get(i + 2).copied() == Some('\'') {
                        state = State::Char;
                        code.push(' ');
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::LineComment { .. } => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            State::BlockComment { doc, depth } => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment {
                            doc,
                            depth: depth - 1,
                        }
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment {
                        doc,
                        depth: depth + 1,
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else {
                    if c == '"' {
                        state = State::Code;
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k).copied() != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            code.push(' ');
                        }
                        state = State::Code;
                        i += hashes + 1;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else {
                    if c == '\'' {
                        state = State::Code;
                    }
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush_line!();
    }
    let _ = is_doc; // last flush's carry-over is never read

    let mut file = SourceFile {
        path: path.to_owned(),
        lines,
    };
    mark_test_regions(&mut file);
    file
}

/// Marks every line belonging to a `#[cfg(test)]`-gated item (attribute
/// line included) with [`Line::in_test`].
///
/// The item body is delimited by brace counting on the code-only view;
/// `#[cfg(test)] mod x;` (no body) ends at the first `;` at depth 0.
fn mark_test_regions(file: &mut SourceFile) {
    let n = file.lines.len();
    let mut i = 0;
    while i < n {
        let trimmed = file.lines[i].code.trim();
        let is_cfg_test = trimmed
            .split_whitespace()
            .collect::<String>()
            .contains("#[cfg(test)]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Walk forward to the end of the attached item.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        while j < n {
            file.lines[j].in_test = true;
            for c in file.lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // `mod name;` style: item ends here.
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_lines(text: &str) -> Vec<String> {
        preprocess("t.rs", text)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = code_lines("let x = \"a[0].unwrap()\"; // b[1]\nfoo();\n");
        assert!(!lines[0].contains("unwrap"));
        assert!(!lines[0].contains("b[1]"));
        assert!(lines[0].contains("let x ="));
        assert_eq!(lines[1].trim(), "foo();");
    }

    #[test]
    fn comment_text_is_captured() {
        let f = preprocess("t.rs", "foo(); // lint:allow(panic) reason\n");
        assert!(f.lines[0].comment.contains("lint:allow(panic) reason"));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let f = preprocess("t.rs", "/// x.unwrap()\n//! y\n// plain\nfn a() {}\n");
        assert!(f.lines[0].is_doc);
        assert!(f.lines[1].is_doc);
        assert!(!f.lines[2].is_doc);
        assert!(!f.lines[0].code.contains("unwrap"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = preprocess("t.rs", "/* a\nb[0]\n*/ code();\n");
        assert!(!f.lines[1].code.contains('['));
        assert!(f.lines[2].code.contains("code();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = code_lines("let s = r#\"x.unwrap() \"quoted\" \"#; y();\n");
        assert!(!lines[0].contains("unwrap"));
        assert!(lines[0].contains("y();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = code_lines("fn f<'a>(x: &'a str) { let c = '\"'; let d = '['; g(); }\n");
        assert!(lines[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!lines[0].contains('['));
        assert!(lines[0].contains("g();"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let text =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = preprocess("t.rs", text);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_semicolon_item() {
        let text = "#[cfg(test)]\nmod helpers;\nfn lib() {}\n";
        let f = preprocess("t.rs", text);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }
}
