//! `LINT_REPORT.json` emission.
//!
//! The report is a stable-keyed JSON object mapping every rule to its
//! violation and waived counts, so diffs across PRs show the panic-path
//! inventory trending to zero. JSON is hand-written (no serde in xtask)
//! with deterministic key order.

use crate::rules::RULES;
use std::collections::BTreeMap;

/// Renders the per-rule `(violations, waived)` counts as pretty JSON.
pub fn render(counts: &BTreeMap<&'static str, (usize, usize)>, files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"rules\": {\n");
    // Iterate in RULES order (not BTreeMap order) so the report reads in
    // the same order the rules are documented.
    for (i, rule) in RULES.iter().enumerate() {
        let (violations, waived) = counts.get(rule).copied().unwrap_or((0, 0));
        out.push_str(&format!(
            "    \"{rule}\": {{ \"violations\": {violations}, \"waived\": {waived} }}"
        ));
        out.push_str(if i + 1 == RULES.len() { "\n" } else { ",\n" });
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        counts.insert("panic", (2, 5));
        let json = render(&counts, 42);
        assert!(json.contains("\"files_scanned\": 42"));
        assert!(json.contains("\"panic\": { \"violations\": 2, \"waived\": 5 }"));
        // Every rule appears even at zero.
        for rule in RULES {
            assert!(json.contains(&format!("\"{rule}\"")), "{rule} missing");
        }
        assert_eq!(json, render(&counts, 42));
    }
}
