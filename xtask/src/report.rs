//! `LINT_REPORT.json` emission and baseline diffing.
//!
//! The v2 report is a versioned, machine-readable ledger of every
//! finding (waived or not), the per-rule aggregates and the waiver
//! inventory. JSON is hand-written (no serde in xtask) with
//! deterministic key order, so the committed report is byte-stable
//! across runs and `git diff LINT_REPORT.json` shows exactly which
//! findings appeared or disappeared.
//!
//! [`diff_baseline`] parses a committed report (via the
//! `isomit_graph::json` codec xtask already uses for bench baselines)
//! and returns the findings present in the current run but absent from
//! the baseline — the "no new findings" CI gate that tolerates
//! historical, waived debt while refusing fresh regressions.

use crate::rules::{LintOutcome, RULES};
use isomit_graph::json::Value;

/// Report format version; bump on any structural change.
pub const REPORT_VERSION: u64 = 2;

/// Renders the full lint outcome as pretty JSON.
pub fn render(outcome: &LintOutcome) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {REPORT_VERSION},\n"));
    out.push_str("  \"engine\": \"token/v2\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));
    out.push_str(&format!(
        "  \"waivers\": {{ \"total\": {}, \"file_scope\": {}, \"line_scope\": {}, \"dead\": {} }},\n",
        outcome.waiver_total,
        outcome.waiver_file_scope,
        outcome.waiver_total - outcome.waiver_file_scope,
        outcome.dead_waivers
    ));
    out.push_str("  \"rules\": {\n");
    // Iterate in RULES order (not BTreeMap order) so the report reads in
    // the same order the rules are documented.
    for (i, rule) in RULES.iter().enumerate() {
        let stats = outcome.per_rule.get(rule.name).copied().unwrap_or_default();
        out.push_str(&format!(
            "    \"{}\": {{ \"severity\": \"{}\", \"violations\": {}, \"waived\": {}, \"waivers\": {} }}",
            rule.name, rule.severity, stats.violations, stats.waived_findings, stats.waivers
        ));
        out.push_str(if i + 1 == RULES.len() { "\n" } else { ",\n" });
    }
    out.push_str("  },\n");
    out.push_str("  \"findings\": [\n");
    let n = outcome.diagnostics.len();
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        let mut entry = format!(
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"waived\": {}",
            d.rule,
            escape(&d.path),
            d.line,
            d.waived
        );
        if !d.taint_path.is_empty() {
            entry.push_str(", \"taint_path\": [");
            for (j, hop) in d.taint_path.iter().enumerate() {
                if j > 0 {
                    entry.push_str(", ");
                }
                entry.push_str(&format!("\"{}\"", escape(hop)));
            }
            entry.push(']');
        }
        entry.push_str(" }");
        out.push_str(&entry);
        out.push_str(if i + 1 == n { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One finding identity for baseline comparison.
type Key = (String, String, u64, bool);

/// Compares the current report against a committed baseline and returns
/// a human-readable description of every finding that is new (absent
/// from the baseline). Waived findings count too: a new waiver is a
/// reviewable change, not invisible debt.
///
/// # Errors
///
/// Returns an error when either report fails to parse or the baseline's
/// `version` does not match [`REPORT_VERSION`].
pub fn diff_baseline(current: &str, baseline: &str) -> Result<Vec<String>, String> {
    let base_keys = finding_keys(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur_keys = finding_keys(current).map_err(|e| format!("current: {e}"))?;
    Ok(cur_keys
        .into_iter()
        .filter(|k| !base_keys.contains(k))
        .map(|(rule, file, line, waived)| {
            format!(
                "{file}:{line}: [{rule}]{}",
                if waived { " (waived)" } else { "" }
            )
        })
        .collect())
}

fn finding_keys(report: &str) -> Result<Vec<Key>, String> {
    let value = Value::parse(report).map_err(|e| e.to_string())?;
    let version = value
        .get("version")
        .and_then(Value::as_u64)
        .ok_or("report has no numeric `version` field")?;
    if version != REPORT_VERSION {
        return Err(format!(
            "report version {version} != expected {REPORT_VERSION}; regenerate with \
             `cargo run -p xtask -- lint --report`"
        ));
    }
    let findings = value
        .get("findings")
        .and_then(Value::as_array)
        .ok_or("report has no `findings` array")?;
    let mut keys = Vec::new();
    for finding in findings {
        keys.push((
            finding
                .get("rule")
                .and_then(Value::as_str)
                .ok_or("finding has no `rule`")?
                .to_owned(),
            finding
                .get("file")
                .and_then(Value::as_str)
                .ok_or("finding has no `file`")?
                .to_owned(),
            finding
                .get("line")
                .and_then(Value::as_u64)
                .ok_or("finding has no `line`")?,
            finding
                .get("waived")
                .and_then(Value::as_bool)
                .ok_or("finding has no `waived`")?,
        ));
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::scan_all;
    use crate::scan::ParsedFile;

    fn outcome_for(src: &str) -> LintOutcome {
        scan_all(&[ParsedFile::parse("crates/graph/src/a.rs", src)])
    }

    #[test]
    fn render_is_versioned_deterministic_and_complete() {
        let outcome = outcome_for(
            "fn f() { x.unwrap(); }\nfn g() { y.unwrap() } // lint:allow(panic) provably Some\n",
        );
        let json = render(&outcome);
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains(
            "\"waivers\": { \"total\": 1, \"file_scope\": 0, \"line_scope\": 1, \"dead\": 0 }"
        ));
        for rule in RULES {
            assert!(
                json.contains(&format!("\"{}\"", rule.name)),
                "{} missing",
                rule.name
            );
        }
        assert!(json.contains(
            "{ \"rule\": \"panic\", \"file\": \"crates/graph/src/a.rs\", \"line\": 1, \"waived\": false }"
        ));
        assert!(json.contains("\"line\": 2, \"waived\": true"));
        assert_eq!(json, render(&outcome));
    }

    #[test]
    fn report_round_trips_through_the_json_codec() {
        let json = render(&outcome_for("fn f() { x.unwrap(); }\n"));
        let keys = finding_keys(&json).expect("self-rendered report parses");
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].0, "panic");
    }

    #[test]
    fn taint_paths_survive_rendering() {
        let outcome = scan_all(&[ParsedFile::parse(
            "crates/diffusion/src/a.rs",
            "pub fn simulate() { let t = Instant::now(); }\n",
        )]);
        let json = render(&outcome);
        assert!(json.contains("\"taint_path\": ["));
        assert!(json.contains("Instant::now"));
    }

    #[test]
    fn diff_baseline_reports_only_new_findings() {
        let base = render(&outcome_for("fn f() { x.unwrap(); }\n"));
        let cur = render(&outcome_for(
            "fn f() { x.unwrap(); }\nfn g(v: &[u8]) -> u8 { v[0] }\n",
        ));
        let new = diff_baseline(&cur, &base).expect("diff");
        assert_eq!(new.len(), 1);
        assert!(new[0].contains("[indexing]"));
        // Identical reports diff clean.
        assert!(diff_baseline(&base, &base).expect("diff").is_empty());
    }

    #[test]
    fn diff_baseline_rejects_version_mismatch() {
        let cur = render(&outcome_for("fn f() {}\n"));
        let old = "{ \"version\": 1, \"findings\": [] }";
        assert!(diff_baseline(&cur, old).is_err());
    }
}
