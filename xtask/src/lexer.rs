//! A hand-rolled Rust lexer: byte-driven, span-preserving, panic-free.
//!
//! This replaces the line-oriented state machine the lint pass used
//! through PR 6. The lexer turns a source file into a flat stream of
//! [`Token`]s with byte spans and 1-based line numbers; everything the
//! rules engine does downstream (item parsing, waiver extraction, taint
//! seeding) consumes this stream, so the file is tokenized exactly once
//! per lint run.
//!
//! Design constraints:
//!
//! * **Total** — must produce a token stream for *any* input string
//!   without panicking or looping: unterminated strings and comments
//!   are closed at end-of-file, stray bytes become [`TokenKind::Unknown`].
//!   A proptest in `xtask/tests/properties.rs` pins this.
//! * **Span round-trip** — tokens are strictly ordered, non-overlapping
//!   and lie on `char` boundaries; the gaps between consecutive tokens
//!   contain only whitespace. Rules can therefore slice the original
//!   source by span to recover exact token text.
//! * **Comment-preserving** — comments are real tokens (they carry the
//!   waiver syntax and `// SAFETY:` contracts), with doc comments
//!   distinguished so rustdoc text is never mistaken for code.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u32`, `1.5e-3`).
    Number,
    /// `"..."` or `b"..."` string literal (escapes handled).
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##` raw (byte) string literal.
    RawStr,
    /// `'x'`, `'\n'` or `b'x'` character literal.
    Char,
    /// `// ...` comment; `doc` is true for `///` (outer) and `//!` (inner).
    LineComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// `/* ... */` comment (nesting-aware); `doc` for `/** */` and `/*! */`.
    BlockComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// Punctuation. Multi-byte tokens are emitted for `::`, `->` and
    /// `=>`; every other operator surfaces as single-byte tokens.
    Punct,
    /// A byte sequence that fits no other class (kept so spans stay
    /// contiguous and the lexer stays total).
    Unknown,
}

/// One token with its position in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive), on a char boundary.
    pub start: usize,
    /// Byte offset one past the last byte (exclusive), on a char boundary.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    ///
    /// Returns `""` if `src` is not the originating source (span out of
    /// range); the lexer itself guarantees in-range char-boundary spans.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether the token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// Whether the token is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub fn is_doc(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }
}

/// Tokenizes `src` completely. Total: never panics, always terminates,
/// and covers every non-whitespace byte of the input with some token.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        text: src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: usize,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::with_capacity(self.src.len() / 4);
        while self.pos < self.src.len() {
            self.skip_whitespace();
            if self.pos >= self.src.len() {
                break;
            }
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            // Safety net: `next_kind` always advances, but guard against
            // a zero-width token ever sneaking in (totality > elegance).
            if self.pos == start {
                self.pos += 1;
            }
            self.pos = self.to_char_boundary(self.pos);
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        out
    }

    /// Rounds `p` up to the next char boundary of the source (spans must
    /// slice cleanly even when a literal ends mid-way through the file).
    fn to_char_boundary(&self, mut p: usize) -> usize {
        while p < self.src.len() && !self.text.is_char_boundary(p) {
            p += 1;
        }
        p.min(self.src.len())
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(b) = self.src.get(self.pos) {
            if *b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = match self.peek(0) {
            Some(b) => b,
            None => return TokenKind::Unknown,
        };
        match b {
            b'/' => match self.peek(1) {
                Some(b'/') => self.line_comment(),
                Some(b'*') => self.block_comment(),
                _ => self.punct(),
            },
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' => self.raw_or_ident(),
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(b) => self.ident(),
            _ => self.punct(),
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` (outer doc, but `////...` is plain) or `//!` (inner doc).
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'/'), Some(b'/')) => false,
            (Some(b'/'), _) => true,
            (Some(b'!'), _) => true,
            _ => false,
        };
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` (but not `/**/` or `/***`) and `/*!` are doc comments.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'*'), Some(b'/')) => false,
            (Some(b'*'), Some(b'*')) => false,
            (Some(b'*'), _) => true,
            (Some(b'!'), _) => true,
            _ => false,
        };
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: close at EOF
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// A plain `"..."` string starting at the opening quote.
    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump(); // escaped byte (may be a newline)
                }
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str // unterminated: close at EOF
    }

    /// Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
    /// byte chars (`b'x'`), raw identifiers (`r#ident`) or a plain
    /// identifier starting with `r`/`b`.
    fn raw_or_ident(&mut self) -> TokenKind {
        let first = self.peek(0).unwrap_or(b'r');
        // `b` prefix shifts everything by one.
        let (raw_off, is_byte) = if first == b'b' {
            match self.peek(1) {
                Some(b'r') => (2usize, true),
                Some(b'"') => {
                    self.bump();
                    return self.string();
                }
                Some(b'\'') => {
                    self.bump();
                    return self.char_literal();
                }
                _ => return self.ident(),
            }
        } else {
            (1usize, false)
        };
        // Count hashes after the (b)r prefix.
        let mut hashes = 0usize;
        while self.peek(raw_off + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(raw_off + hashes) == Some(b'"') {
            // Raw (byte) string: consume prefix, hashes and opening quote.
            for _ in 0..raw_off + hashes + 1 {
                self.bump();
            }
            loop {
                match self.peek(0) {
                    Some(b'"') => {
                        let mut matched = true;
                        for k in 0..hashes {
                            if self.peek(1 + k) != Some(b'#') {
                                matched = false;
                                break;
                            }
                        }
                        self.bump();
                        if matched {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            return TokenKind::RawStr;
                        }
                    }
                    Some(_) => self.bump(),
                    None => return TokenKind::RawStr, // unterminated
                }
            }
        }
        if !is_byte && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
            // Raw identifier `r#ident`.
            self.bump();
            self.bump();
            return self.ident();
        }
        self.ident()
    }

    /// `'a` (lifetime), `'x'` / `'\n'` (char literal) or a stray quote.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match self.peek(1) {
            Some(b'\\') => self.char_literal(),
            Some(b) if is_ident_start(b) && b < 0x80 => {
                // Could be `'a'` (char) or `'abc` (lifetime): consume the
                // identifier run and check for a closing quote.
                let mut n = 1usize;
                while self.peek(1 + n).is_some_and(is_ident_continue) {
                    n += 1;
                }
                if n == 1 && self.peek(2) == Some(b'\'') {
                    self.char_literal()
                } else {
                    self.bump(); // quote
                    for _ in 0..n {
                        self.bump();
                    }
                    TokenKind::Lifetime
                }
            }
            _ => self.char_literal(),
        }
    }

    /// A char literal starting at the opening quote. Never crosses a
    /// newline (so a stray `'` cannot swallow the rest of the file).
    fn char_literal(&mut self) -> TokenKind {
        self.bump(); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'\'' => {
                    self.bump();
                    return TokenKind::Char;
                }
                b'\n' => break,
                _ => self.bump(),
            }
        }
        TokenKind::Char // unterminated on this line: close here
    }

    fn number(&mut self) -> TokenKind {
        // Integer part incl. radix prefixes, `_` separators and suffixes.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        // Fractional part: a `.` followed by a digit (so `1..n` and
        // `x.method()` are left alone).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        // Signed exponent: `1e-3` lexes `1e` then needs `-3`.
        if (self.prev_byte() == Some(b'e') || self.prev_byte() == Some(b'E'))
            && (self.peek(0) == Some(b'+') || self.peek(0) == Some(b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
        }
        TokenKind::Number
    }

    fn prev_byte(&self) -> Option<u8> {
        self.pos
            .checked_sub(1)
            .and_then(|p| self.src.get(p))
            .copied()
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Ident
    }

    fn punct(&mut self) -> TokenKind {
        // Join the separators the item parser keys on; everything else
        // stays single-byte (e.g. `>>` is two `>` tokens, which keeps
        // generics matching trivial).
        let joined = matches!(
            (self.peek(0), self.peek(1)),
            (Some(b':'), Some(b':')) | (Some(b'-'), Some(b'>')) | (Some(b'='), Some(b'>'))
        );
        self.bump();
        if joined {
            self.bump();
        }
        TokenKind::Punct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let ts = kinds("pub fn f(x: u32) -> u32 { x }");
        let texts: Vec<&str> = ts.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            texts,
            ["pub", "fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "}"]
        );
        assert_eq!(ts[8].0, TokenKind::Punct); // `->` joined
    }

    #[test]
    fn strings_rawstrings_and_chars() {
        let src = r##"let s = "a\"b"; let r = r#"raw "x" "#; let c = '{'; let b = b'\n';"##;
        let ts = kinds(src);
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s.contains("a\\\"b")));
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::RawStr && s.contains("raw")));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'static; }");
        let lifetimes: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        assert!(ts.iter().any(|(k, s)| *k == TokenKind::Char && s == "'x'"));
    }

    #[test]
    fn comments_doc_and_nested() {
        let src = "/// outer\n//! inner\n// plain\n//// also plain\n/* a /* nested */ b */\n/** block doc */ x";
        let ts = kinds(src);
        assert_eq!(ts[0].0, TokenKind::LineComment { doc: true });
        assert_eq!(ts[1].0, TokenKind::LineComment { doc: true });
        assert_eq!(ts[2].0, TokenKind::LineComment { doc: false });
        assert_eq!(ts[3].0, TokenKind::LineComment { doc: false });
        assert_eq!(ts[4].0, TokenKind::BlockComment { doc: false });
        assert!(ts[4].1.contains("nested"));
        assert_eq!(ts[5].0, TokenKind::BlockComment { doc: true });
        assert_eq!(ts[6].1, "x");
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let ts = kinds("let x = 1_000u32 + 0xff + 1.5e-3; for i in 0..10 {} t.0");
        let nums: Vec<&str> = ts
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["1_000u32", "0xff", "1.5e-3", "0", "10", "0"]);
    }

    #[test]
    fn raw_identifiers() {
        let ts = kinds("let r#type = 1;");
        assert!(ts
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "r#type"));
    }

    #[test]
    fn line_numbers_track_all_token_classes() {
        let src = "a\n\"multi\nline\"\nb\n/* c\nd */\ne";
        let ts = lex(src);
        let by_text: Vec<(String, usize)> = ts
            .iter()
            .map(|t| (t.text(src).chars().take(3).collect(), t.line))
            .collect();
        assert_eq!(by_text[0], ("a".into(), 1));
        assert_eq!(by_text[1].1, 2); // string starts on line 2
        assert_eq!(by_text[2], ("b".into(), 4));
        assert_eq!(by_text[3].1, 5); // block comment starts on line 5
        assert_eq!(by_text[4], ("e".into(), 7));
    }

    #[test]
    fn spans_cover_and_order() {
        let src = "fn f() { \"s\" /* c */ 'x' r#\"r\"# 1.5 }";
        let ts = lex(src);
        let mut prev_end = 0;
        for t in &ts {
            assert!(t.start >= prev_end);
            assert!(t.end > t.start);
            assert!(src.get(t.start..t.end).is_some(), "char-boundary span");
            assert!(src[prev_end..t.start].chars().all(char::is_whitespace));
            prev_end = t.end;
        }
        assert!(src[prev_end..].chars().all(char::is_whitespace));
    }

    #[test]
    fn unterminated_constructs_close_at_eof() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let ts = lex(src);
            assert!(!ts.is_empty(), "{src:?}");
            assert_eq!(ts.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn multibyte_utf8_stays_on_boundaries() {
        let src = "let s = \"héllo\"; // cömment\nlet x = '€';";
        for t in lex(src) {
            assert!(src.get(t.start..t.end).is_some());
        }
    }
}
