//! Determinism taint analysis over the per-crate call graph.
//!
//! The lexical `determinism` rule catches a nondeterministic construct at
//! the line where it appears. This module enforces the *transitive*
//! contract: a `pub` API of the deterministic-core crates
//! ([`crate::rules::TAINT_CRATES`]: graph, diffusion, forest, core) must
//! not reach a nondeterministic source through any chain of same-crate
//! calls.
//!
//! The analysis is deliberately an over-approximation:
//!
//! * the call graph is built per crate by simple-name resolution — an
//!   identifier followed by `(` resolves to every same-crate `fn` of
//!   that name (method receivers are not type-checked);
//! * taint is seeded at lexical sources inside fn bodies
//!   (`Instant::now`, `SystemTime`, `HashMap`/`HashSet`, `thread_rng`,
//!   thread-id reads, and float `fold`/`reduce` inside rayon pipelines)
//!   and propagated to all transitive callers via reverse BFS.
//!
//! A seed covered by a `determinism` or `determinism-taint` waiver is
//! trusted (the waiver's reason is the order-independence argument) and
//! does not propagate. Findings land on the `pub` fn's declaration line
//! and carry the full call chain down to the source in
//! [`crate::rules::Diagnostic::taint_path`].

use crate::items::ItemKind;
use crate::lexer::TokenKind;
use crate::rules::{Diagnostic, TAINT_CRATES};
use crate::scan::ParsedFile;
use std::collections::{BTreeMap, VecDeque};

/// One function in the per-crate call graph.
struct FnNode {
    /// Index into the `files` slice handed to [`analyze`].
    file: usize,
    /// Index into that file's item list.
    item: usize,
    /// Direct nondeterministic sources inside the body (description +
    /// line), after waiver suppression.
    sources: Vec<(String, usize)>,
    /// Call-graph successors (indices into the crate's node list).
    callees: Vec<usize>,
}

/// Runs the taint analysis over every crate in
/// [`crate::rules::TAINT_CRATES`] and returns `determinism-taint`
/// diagnostics for tainted `pub` functions.
pub fn analyze(files: &[ParsedFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for krate in TAINT_CRATES {
        let members: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.path.starts_with(krate))
            .map(|(i, _)| i)
            .collect();
        if !members.is_empty() {
            analyze_crate(files, &members, &mut out);
        }
    }
    out
}

fn analyze_crate(files: &[ParsedFile], members: &[usize], out: &mut Vec<Diagnostic>) {
    // Collect every non-test fn in the crate.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &fi in members {
        let f = &files[fi];
        for (ii, item) in f.items.iter().enumerate() {
            if item.kind != ItemKind::Fn || item.cfg_test {
                continue;
            }
            by_name
                .entry(item.name.as_str())
                .or_default()
                .push(nodes.len());
            nodes.push(FnNode {
                file: fi,
                item: ii,
                sources: find_sources(f, item.body),
                callees: Vec::new(),
            });
        }
    }

    // Resolve call sites by simple name within the crate.
    for ni in 0..nodes.len() {
        let f = &files[nodes[ni].file];
        let Some((lo, hi)) = f.items[nodes[ni].item].body else {
            continue;
        };
        let mut callees = Vec::new();
        for i in lo..hi.min(f.tokens.len()) {
            let t = &f.tokens[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text(&f.text);
            if is_keyword(name) {
                continue;
            }
            if f.next_sig(i).map(|j| f.token_text(j)) != Some("(") {
                continue;
            }
            if let Some(targets) = by_name.get(name) {
                for &t in targets {
                    if t != ni && !callees.contains(&t) {
                        callees.push(t);
                    }
                }
            }
        }
        nodes[ni].callees = callees;
    }

    // Reverse BFS from seeded fns. `origin[n]` records how taint reached
    // `n`: either a direct source or the callee it came through.
    #[derive(Clone)]
    enum Origin {
        Source(String, usize),
        Callee(usize),
    }
    let mut origin: Vec<Option<Origin>> = vec![None; nodes.len()];
    let mut queue = VecDeque::new();
    for (ni, node) in nodes.iter().enumerate() {
        if let Some((what, line)) = node.sources.first() {
            origin[ni] = Some(Origin::Source(what.clone(), *line));
            queue.push_back(ni);
        }
    }
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (ni, node) in nodes.iter().enumerate() {
        for &c in &node.callees {
            callers[c].push(ni);
        }
    }
    while let Some(ni) = queue.pop_front() {
        for &caller in &callers[ni] {
            if origin[caller].is_none() {
                origin[caller] = Some(Origin::Callee(ni));
                queue.push_back(caller);
            }
        }
    }

    // Report tainted pub fns with their chain down to the source.
    for (ni, node) in nodes.iter().enumerate() {
        if origin[ni].is_none() {
            continue;
        }
        let f = &files[node.file];
        let item = &f.items[node.item];
        if !item.is_pub {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = ni;
        loop {
            let nf = &files[nodes[cur].file];
            let nitem = &nf.items[nodes[cur].item];
            path.push(format!("{}() at {}:{}", nitem.name, nf.path, nitem.line));
            match origin[cur].clone() {
                Some(Origin::Callee(next)) => cur = next,
                Some(Origin::Source(what, line)) => {
                    path.push(format!("{} at {}:{}", what, nf.path, line));
                    break;
                }
                None => break,
            }
        }
        out.push(Diagnostic {
            rule: "determinism-taint",
            path: f.path.clone(),
            line: item.line,
            message: format!(
                "`pub fn {}` transitively reaches a nondeterministic source ({})",
                item.name,
                path.join(" -> ")
            ),
            waived: false,
            taint_path: path,
        });
    }
}

/// Lexical nondeterminism sources inside a fn body, with waived seeds
/// suppressed.
fn find_sources(f: &ParsedFile, body: Option<(usize, usize)>) -> Vec<(String, usize)> {
    let Some((lo, hi)) = body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let has_rayon = (lo..hi.min(f.tokens.len())).any(|i| {
        matches!(
            f.token_text(i),
            "par_iter" | "into_par_iter" | "par_chunks" | "par_bridge" | "par_iter_mut"
        )
    });
    for i in lo..hi.min(f.tokens.len()) {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(&f.text);
        let what: Option<String> = match text {
            "HashMap" | "HashSet" => Some(format!("{text} (unordered iteration)")),
            "thread_rng" => Some("thread_rng (ambient RNG)".to_owned()),
            "SystemTime" => Some("SystemTime (wall clock)".to_owned()),
            "ThreadId" => Some("ThreadId (thread identity)".to_owned()),
            "Instant" if path_call(f, i, "now") => {
                Some("Instant::now (monotonic clock)".to_owned())
            }
            "thread" if path_call(f, i, "current") => {
                Some("thread::current (thread identity)".to_owned())
            }
            "fold" | "reduce" if has_rayon && float_args(f, i) => Some(format!(
                "parallel float `{text}` (non-associative reduction order)"
            )),
            _ => None,
        };
        if let Some(what) = what {
            if !seed_waived(f, t.line) {
                out.push((what, t.line));
            }
        }
    }
    out
}

/// `true` if `i` is followed by `::segment`.
fn path_call(f: &ParsedFile, i: usize, segment: &str) -> bool {
    let Some(sep) = f.next_sig(i) else {
        return false;
    };
    f.token_text(sep) == "::" && f.next_sig(sep).is_some_and(|j| f.token_text(j) == segment)
}

/// `true` when `.fold(`/`.reduce(` call args mention a float literal or
/// an `f32`/`f64` type — the signature of a non-associative reduction.
fn float_args(f: &ParsedFile, i: usize) -> bool {
    let Some(prev) = f.prev_sig(i) else {
        return false;
    };
    if f.token_text(prev) != "." {
        return false;
    }
    let Some(open) = f.next_sig(i) else {
        return false;
    };
    if f.token_text(open) != "(" {
        return false;
    }
    let mut depth = 0usize;
    for j in open..f.tokens.len() {
        let t = &f.tokens[j];
        if t.is_comment() {
            continue;
        }
        match t.text(&f.text) {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            text if t.kind == TokenKind::Ident && matches!(text, "f32" | "f64") => {
                return true;
            }
            text if t.kind == TokenKind::Number && (text.contains('.') || is_float_exp(text)) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// `1e-3`-style floats without a dot (hex literals excluded).
fn is_float_exp(text: &str) -> bool {
    !text.starts_with("0x") && !text.starts_with("0X") && text.contains(['e', 'E'])
}

/// A seed is trusted when a `determinism`/`determinism-taint` waiver
/// covers its line (same line, preceding line, or file scope).
fn seed_waived(f: &ParsedFile, line: usize) -> bool {
    f.waivers.iter().any(|w| {
        w.malformed.is_none()
            && (w.rule == "determinism" || w.rule == "determinism-taint")
            && (w.file_scope || w.line == line || w.line + 1 == line)
    })
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "unsafe"
            | "move"
            | "break"
            | "continue"
            | "else"
            | "in"
            | "let"
            | "fn"
            | "as"
            | "ref"
            | "mut"
            | "box"
            | "await"
            | "yield"
            | "dyn"
            | "where"
            | "use"
            | "pub"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "true"
            | "false"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taint(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        analyze(&parsed)
    }

    #[test]
    fn direct_source_in_pub_fn_is_flagged() {
        let d = taint(&[(
            "crates/diffusion/src/a.rs",
            "pub fn simulate() { let t = Instant::now(); }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "determinism-taint");
        assert!(d[0].taint_path.iter().any(|s| s.contains("Instant::now")));
    }

    #[test]
    fn taint_propagates_through_private_helpers_across_files() {
        let d = taint(&[
            (
                "crates/forest/src/a.rs",
                "use std::collections::HashMap;\nfn helper() -> usize { let m: HashMap<u32, u32> = HashMap::new(); m.len() }\n",
            ),
            (
                "crates/forest/src/b.rs",
                "pub fn extract() -> usize { mid() }\nfn mid() -> usize { helper() }\n",
            ),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "crates/forest/src/b.rs");
        assert!(d[0].message.contains("extract"));
        // Full chain: extract -> mid -> helper -> HashMap.
        assert_eq!(d[0].taint_path.len(), 4);
    }

    #[test]
    fn private_tainted_fns_unreachable_from_pub_are_silent() {
        let d = taint(&[(
            "crates/graph/src/a.rs",
            "fn orphan() { let r = thread_rng(); }\npub fn clean() -> u32 { 1 }\n",
        )]);
        assert!(d.is_empty());
    }

    #[test]
    fn waived_seed_does_not_propagate() {
        let d = taint(&[(
            "crates/core/src/a.rs",
            "pub fn lookup() {\n  // lint:allow(determinism) values drained into a sorted Vec before use\n  let m = HashMap::new();\n}\n",
        )]);
        assert!(d.is_empty());
    }

    #[test]
    fn scope_is_limited_to_taint_crates_and_skips_tests() {
        let d = taint(&[
            (
                "crates/bench/src/a.rs",
                "pub fn bench() { let t = Instant::now(); }\n",
            ),
            (
                "crates/graph/src/b.rs",
                "#[cfg(test)]\nmod tests {\n  pub fn t() { let m = HashMap::new(); }\n}\n",
            ),
        ]);
        assert!(d.is_empty());
    }

    #[test]
    fn parallel_float_reduction_is_a_seed() {
        let d = taint(&[(
            "crates/diffusion/src/a.rs",
            "pub fn mean(v: &[f64]) -> f64 { v.par_iter().fold(|| 0.0f64, |a, b| a + b).sum() }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].taint_path.iter().any(|s| s.contains("fold")));
    }

    #[test]
    fn integer_parallel_reduction_is_clean() {
        let d = taint(&[(
            "crates/diffusion/src/a.rs",
            "pub fn tally(v: &[u32]) -> u32 { v.par_iter().fold(|| 0u32, |a, b| a + b).sum() }\n",
        )]);
        assert!(d.is_empty());
    }
}
