//! CLI entry point: `cargo run -p xtask -- lint [--report]`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut want_report = false;
    let mut command: Option<&str> = None;
    for arg in &args {
        match arg.as_str() {
            "lint" => command = Some("lint"),
            "--report" => want_report = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: cargo run -p xtask -- lint [--report]");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--report]");
        return ExitCode::from(2);
    }

    let root = xtask::workspace_root();
    let (unwaived, report_json) = xtask::run_lint(&root, false);

    if want_report {
        let path = root.join("LINT_REPORT.json");
        if let Err(e) = std::fs::write(&path, &report_json) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if unwaived > 0 {
        eprintln!("lint: {unwaived} unwaived diagnostic(s)");
        ExitCode::FAILURE
    } else {
        println!("lint: clean");
        ExitCode::SUCCESS
    }
}
