//! CLI entry point: `cargo run -p xtask -- lint [--report] [--diff-baseline]`
//! and `cargo run -p xtask -- bench-check [--update-baselines]`.

use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- lint [--report] [--diff-baseline] | \
                     bench-check [--update-baselines]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut want_report = false;
    let mut want_diff = false;
    let mut update_baselines = false;
    let mut command: Option<&str> = None;
    for arg in &args {
        match arg.as_str() {
            "lint" => command = Some("lint"),
            "bench-check" => command = Some("bench-check"),
            "--report" => want_report = true,
            "--diff-baseline" => want_diff = true,
            "--update-baselines" => update_baselines = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match command {
        Some("lint") => run_lint(want_report, want_diff),
        Some("bench-check") => run_bench_check(update_baselines),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_lint(want_report: bool, want_diff: bool) -> ExitCode {
    let root = xtask::workspace_root();
    let (unwaived, report_json) = xtask::run_lint(&root, false);

    let mut failed = false;
    if want_diff {
        match xtask::diff_baseline(&root, &report_json) {
            Ok(new_findings) if new_findings.is_empty() => {
                println!("lint: no findings beyond the committed baseline");
            }
            Ok(new_findings) => {
                for finding in &new_findings {
                    eprintln!("lint: new vs baseline: {finding}");
                }
                eprintln!(
                    "lint: {} finding(s) not in the committed LINT_REPORT.json; fix them \
                     or regenerate the report with --report and commit the diff",
                    new_findings.len()
                );
                failed = true;
            }
            Err(e) => {
                eprintln!("lint: baseline diff failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if want_report {
        let path = root.join("LINT_REPORT.json");
        if let Err(e) = std::fs::write(&path, &report_json) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if unwaived > 0 {
        eprintln!("lint: {unwaived} unwaived diagnostic(s)");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("lint: clean");
        ExitCode::SUCCESS
    }
}

fn run_bench_check(update_baselines: bool) -> ExitCode {
    let root = xtask::workspace_root();
    let outcome = match xtask::bench_check::run_bench_check(&root, update_baselines) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("bench-check: {e}");
            return ExitCode::from(2);
        }
    };
    for warning in &outcome.warnings {
        println!("bench-check: warning: {warning}");
    }
    if outcome.failures.is_empty() {
        println!("bench-check: clean");
        ExitCode::SUCCESS
    } else {
        for failure in &outcome.failures {
            eprintln!("bench-check: {failure}");
        }
        eprintln!("bench-check: {} violation(s)", outcome.failures.len());
        ExitCode::FAILURE
    }
}
