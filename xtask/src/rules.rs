//! The project lint rules, waiver handling and the scanning driver,
//! rebuilt on the token stream + item tree (see DESIGN.md §13 "Static
//! analysis v2").
//!
//! Expression rules walk each file's token stream once; item rules walk
//! the item tree; the cross-file determinism taint analysis
//! ([`crate::taint`]) consumes the same [`ParsedFile`]s. Nothing is
//! re-read or re-tokenized per rule.
//!
//! ## Rules
//!
//! * `panic` — no *silent* panic paths in non-test library code:
//!   `.unwrap()`, bare `unreachable!()`, `panic!`, `todo!`,
//!   `unimplemented!` and `.expect(<non-literal>)` are findings.
//!   `.expect("message")` and `unreachable!("message")` with a literal
//!   message are **messaged assertions** and are allowed: the
//!   infallibility argument that used to live in a waiver comment lives
//!   in the panic message itself, where it is machine-checked for
//!   presence and survives to runtime. Binary targets (`src/bin/**`,
//!   `main.rs`) are fail-fast entry points and exempt, as are functions
//!   whose doc carries a `# Panics` section (the panic is API contract).
//! * `indexing` — no slice/array subscripts in non-test library code
//!   (prefer `get`/iterators); functions with a `# Panics` doc section
//!   are exempt.
//! * `determinism` — no `HashMap`/`HashSet`, `thread_rng`, thread-id,
//!   `SystemTime` or `Instant::now` inside the crates feeding the
//!   deterministic simulation layer.
//! * `determinism-taint` — transitive version of the above: a `pub` API
//!   of the deterministic-core crates (graph, diffusion, forest, core)
//!   must not *reach* a nondeterministic source through the per-crate
//!   call graph (see [`crate::taint`]).
//! * `pub-docs` / `doc-examples` — doc coverage in `crates/graph` and
//!   `crates/core` (unchanged policy, now item-tree based).
//! * `errors-doc` — every documented `pub fn` returning `Result` in the
//!   doc-enforced crates needs an `# Errors` section.
//! * `unsafe` — `unsafe` requires a waiver anywhere in the workspace.
//! * `safety-comment` — every `unsafe` site additionally requires a
//!   `// SAFETY:` comment in the three lines above it (waived or not).
//! * `cast-truncation` — no `as` casts to sub-`usize` integer types in
//!   the deterministic crates: node/edge indices must go through
//!   `u32::try_from(..).expect(..)` or the checked id constructors so
//!   truncation can never silently corrupt an index.
//! * `unbounded-queue` / `telemetry` — unchanged policies, token-exact.
//! * `waiver` — malformed waivers (unknown rule, missing reason).
//! * `dead-waiver` — waivers that no longer match any finding, line or
//!   file scoped; dead waivers fail the lint so stale debt cannot
//!   accumulate.
//!
//! A diagnostic is silenced by `// lint:allow(<rule>) <reason>` on the
//! same or preceding line, or `// lint:allow-file(<rule>) <reason>`
//! anywhere in the file.

use crate::lexer::TokenKind;
use crate::scan::ParsedFile;
use crate::taint;
use std::collections::BTreeMap;

/// Static metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Rule name as used in waivers and the report.
    pub name: &'static str,
    /// Report severity (every current rule denies).
    pub severity: &'static str,
}

/// Every rule known to the linter, in report order.
pub const RULES: [Rule; 14] = [
    Rule {
        name: "panic",
        severity: "deny",
    },
    Rule {
        name: "indexing",
        severity: "deny",
    },
    Rule {
        name: "determinism",
        severity: "deny",
    },
    Rule {
        name: "determinism-taint",
        severity: "deny",
    },
    Rule {
        name: "pub-docs",
        severity: "deny",
    },
    Rule {
        name: "doc-examples",
        severity: "deny",
    },
    Rule {
        name: "errors-doc",
        severity: "deny",
    },
    Rule {
        name: "unsafe",
        severity: "deny",
    },
    Rule {
        name: "safety-comment",
        severity: "deny",
    },
    Rule {
        name: "cast-truncation",
        severity: "deny",
    },
    Rule {
        name: "unbounded-queue",
        severity: "deny",
    },
    Rule {
        name: "telemetry",
        severity: "deny",
    },
    Rule {
        name: "waiver",
        severity: "deny",
    },
    Rule {
        name: "dead-waiver",
        severity: "deny",
    },
];

/// Crates whose sources feed the deterministic simulation layer.
pub const DETERMINISTIC_CRATES: [&str; 7] = [
    "crates/graph/",
    "crates/diffusion/",
    "crates/forest/",
    "crates/core/",
    "crates/detectors/",
    "crates/datasets/",
    "crates/metrics/",
];

/// Crates whose `pub` APIs carry the bit-identity contract: the
/// determinism taint analysis fails any tainted function reachable from
/// these crates' public surface.
pub const TAINT_CRATES: [&str; 5] = [
    "crates/graph/",
    "crates/diffusion/",
    "crates/forest/",
    "crates/core/",
    "crates/detectors/",
];

/// Crates in which every `pub fn` must have a doc comment (and, when it
/// returns `Result`, an `# Errors` section).
const DOC_ENFORCED_CRATES: [&str; 3] = ["crates/graph/", "crates/core/", "crates/detectors/"];

/// Crates the `telemetry` rule does not apply to.
const TELEMETRY_EXEMPT_CRATES: [&str; 2] = ["crates/telemetry/", "crates/bench/"];

/// Keywords after which a `[` opens an array/slice expression, pattern
/// or type — not an indexing operation.
const NON_INDEX_KEYWORDS: [&str; 18] = [
    "let", "in", "return", "if", "while", "match", "else", "mut", "ref", "move", "box", "as",
    "for", "break", "continue", "dyn", "where", "loop",
];

/// Integer types an `as` cast can truncate an index into.
const TRUNCATING_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// One lint finding at a specific source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// `true` if an inline or file waiver covers this diagnostic.
    pub waived: bool,
    /// For `determinism-taint`: the call chain from the public API down
    /// to the nondeterministic source.
    pub taint_path: Vec<String>,
}

impl Diagnostic {
    fn new(rule: &'static str, path: &str, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_owned(),
            line,
            message,
            waived: false,
            taint_path: Vec::new(),
        }
    }
}

/// Per-rule aggregates for the report.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleStats {
    /// Unwaived findings (these fail the lint).
    pub violations: usize,
    /// Findings silenced by a waiver.
    pub waived_findings: usize,
    /// Waiver comments naming this rule.
    pub waivers: usize,
}

/// The complete result of a lint run.
#[derive(Debug)]
pub struct LintOutcome {
    /// All findings, waived ones included, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule aggregates keyed in [`RULES`] order.
    pub per_rule: BTreeMap<&'static str, RuleStats>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Total waiver comments in the tree.
    pub waiver_total: usize,
    /// How many of those are `lint:allow-file`.
    pub waiver_file_scope: usize,
    /// Waivers that matched no finding (each also surfaces as a
    /// `dead-waiver` diagnostic).
    pub dead_waivers: usize,
}

impl LintOutcome {
    /// Count of findings that fail the lint.
    pub fn unwaived(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.waived).count()
    }
}

/// Runs every rule over the parsed files: per-file expression and item
/// rules, the cross-file taint analysis, waiver application and the
/// dead-waiver sweep. One parse, one pass per file, all rules.
pub fn scan_all(files: &[ParsedFile]) -> LintOutcome {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for f in files {
        expression_rules(f, &mut diagnostics);
        item_rules(f, &mut diagnostics);
    }
    diagnostics.extend(taint::analyze(files));

    // Waiver application + dead-waiver sweep, per file.
    let mut waiver_total = 0usize;
    let mut waiver_file_scope = 0usize;
    let mut dead_waivers = 0usize;
    let mut per_rule_waivers: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in files {
        let mut used = vec![false; f.waivers.len()];
        for d in diagnostics.iter_mut().filter(|d| d.path == f.path) {
            for (wi, w) in f.waivers.iter().enumerate() {
                if w.malformed.is_some() || w.rule != d.rule {
                    continue;
                }
                if w.file_scope || w.line == d.line || w.line + 1 == d.line {
                    used[wi] = true;
                    d.waived = true;
                    // Keep scanning so every matching waiver is marked
                    // used (a file waiver and a line waiver may overlap).
                }
            }
        }
        for (wi, w) in f.waivers.iter().enumerate() {
            if let Some(why) = &w.malformed {
                diagnostics.push(Diagnostic::new(
                    "waiver",
                    &f.path,
                    w.line,
                    format!("malformed waiver: {why}"),
                ));
                continue;
            }
            waiver_total += 1;
            if w.file_scope {
                waiver_file_scope += 1;
            }
            if let Some(rule) = RULES.iter().find(|r| r.name == w.rule) {
                *per_rule_waivers.entry(rule.name).or_default() += 1;
            }
            if !used[wi] {
                dead_waivers += 1;
                diagnostics.push(Diagnostic::new(
                    "dead-waiver",
                    &f.path,
                    w.line,
                    format!(
                        "{} waiver for rule `{}` matches no finding; remove it",
                        if w.file_scope { "file" } else { "line" },
                        w.rule
                    ),
                ));
            }
        }
    }

    diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));

    let mut per_rule: BTreeMap<&'static str, RuleStats> = RULES
        .iter()
        .map(|r| (r.name, RuleStats::default()))
        .collect();
    for d in &diagnostics {
        let entry = per_rule.entry(d.rule).or_default();
        if d.waived {
            entry.waived_findings += 1;
        } else {
            entry.violations += 1;
        }
    }
    for (rule, count) in per_rule_waivers {
        per_rule.entry(rule).or_default().waivers = count;
    }

    LintOutcome {
        diagnostics,
        per_rule,
        files_scanned: files.len(),
        waiver_total,
        waiver_file_scope,
        dead_waivers,
    }
}

fn in_crates(path: &str, crates: &[&str]) -> bool {
    crates.iter().any(|c| path.starts_with(c))
}

/// All token-stream rules, one pass over the file's tokens.
fn expression_rules(f: &ParsedFile, out: &mut Vec<Diagnostic>) {
    let deterministic = in_crates(&f.path, &DETERMINISTIC_CRATES);
    let telemetry_enforced = f.path.starts_with("crates/")
        && !deterministic
        && !in_crates(&f.path, &TELEMETRY_EXEMPT_CRATES);
    let is_bin = f.is_bin_target();

    for (i, tok) in f.tokens.iter().enumerate() {
        if tok.is_comment() || f.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let text = tok.text(&f.text);
        let line = tok.line;
        let prev = f.prev_sig(i);
        let next = f.next_sig(i);
        let prev_text = prev.map(|j| f.token_text(j)).unwrap_or("");
        let next_text = next.map(|j| f.token_text(j)).unwrap_or("");
        let panics_documented = f.fn_of(i).is_some_and(|item| item.has_panics_doc());

        // --- panic ---------------------------------------------------
        if !is_bin && !panics_documented {
            let finding: Option<String> = match text {
                "unwrap" if prev_text == "." && next_text == "(" => Some(
                    "`unwrap()` is a silent panic path; use `expect(\"<invariant>\")`, \
                     return a Result, or waive with a proof of infallibility"
                        .into(),
                ),
                "expect" if prev_text == "." && next_text == "(" => {
                    // `.expect("literal message")` is a messaged
                    // assertion and allowed; anything else is a finding.
                    let arg = next.and_then(|j| f.next_sig(j));
                    let arg_is_literal = arg.is_some_and(|j| {
                        matches!(f.tokens[j].kind, TokenKind::Str | TokenKind::RawStr)
                            && f.next_sig(j).map(|k| f.token_text(k)) == Some(")")
                    });
                    (!arg_is_literal).then(|| {
                        "`expect` without a literal message; state the infallibility \
                         argument as a string literal so it survives to the panic"
                            .into()
                    })
                }
                "panic" if next_text == "!" => {
                    Some("`panic!` in library code; return a Result or waive".into())
                }
                "todo" if next_text == "!" => Some("`todo!` in library code".into()),
                "unimplemented" if next_text == "!" => {
                    Some("`unimplemented!` in library code".into())
                }
                "unreachable" if next_text == "!" => {
                    let open = next.and_then(|j| f.next_sig(j));
                    let arg = open.and_then(|j| f.next_sig(j));
                    let messaged = open.is_some_and(|j| f.token_text(j) == "(")
                        && arg.is_some_and(|j| {
                            matches!(f.tokens[j].kind, TokenKind::Str | TokenKind::RawStr)
                        });
                    (!messaged).then(|| {
                        "bare `unreachable!()`; state the structural invariant as a \
                         message (`unreachable!(\"...\")`) or waive"
                            .into()
                    })
                }
                _ => None,
            };
            if let Some(message) = finding {
                out.push(Diagnostic::new("panic", &f.path, line, message));
            }
        }

        // --- indexing ------------------------------------------------
        if text == "[" && tok.kind == TokenKind::Punct && !panics_documented {
            let flags = prev.is_some_and(|j| {
                let pt = &f.tokens[j];
                let ptext = pt.text(&f.text);
                match pt.kind {
                    TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&ptext),
                    TokenKind::Str | TokenKind::RawStr => true,
                    TokenKind::Punct => matches!(ptext, ")" | "]" | "?"),
                    _ => false,
                }
            });
            if flags {
                out.push(Diagnostic::new(
                    "indexing",
                    &f.path,
                    line,
                    "slice indexing can panic; use `get`/iterators or waive with a \
                     bounds argument"
                        .into(),
                ));
            }
        }

        // --- determinism --------------------------------------------
        if deterministic && tok.kind == TokenKind::Ident {
            let what = match text {
                "HashMap" => Some("HashMap iteration order is nondeterministic"),
                "HashSet" => Some("HashSet iteration order is nondeterministic"),
                "thread_rng" => Some("ambient RNG breaks seeded determinism"),
                "SystemTime" => Some("wall-clock reads break determinism"),
                "ThreadId" => Some("thread identity breaks run-to-run determinism"),
                "Instant" if is_path_call(f, i, "now") => {
                    Some("monotonic-clock reads break determinism")
                }
                "thread" if is_path_call(f, i, "current") => {
                    Some("thread identity breaks run-to-run determinism")
                }
                _ => None,
            };
            if let Some(what) = what {
                out.push(Diagnostic::new(
                    "determinism",
                    &f.path,
                    line,
                    format!(
                        "{what}; use seeded streams / BTree collections or waive with \
                         an order-independence argument"
                    ),
                ));
            }
        }

        // --- telemetry ----------------------------------------------
        if telemetry_enforced
            && tok.kind == TokenKind::Ident
            && matches!(text, "Instant" | "SystemTime")
            && is_path_call(f, i, "now")
        {
            out.push(Diagnostic::new(
                "telemetry",
                &f.path,
                line,
                format!(
                    "`{text}::now` in library code; measure latency through \
                     `isomit-telemetry` spans/histograms, or waive if this timestamp \
                     is not a latency measurement"
                ),
            ));
        }

        // --- unsafe + safety-comment --------------------------------
        if text == "unsafe" && tok.kind == TokenKind::Ident {
            out.push(Diagnostic::new(
                "unsafe",
                &f.path,
                line,
                "`unsafe` requires a waiver with a soundness argument".into(),
            ));
            let has_safety = f.tokens.iter().any(|t| {
                t.is_comment()
                    && t.line + 3 >= line
                    && t.line <= line
                    && t.text(&f.text).contains("SAFETY:")
            });
            if !has_safety {
                out.push(Diagnostic::new(
                    "safety-comment",
                    &f.path,
                    line,
                    "`unsafe` without a `// SAFETY:` comment in the three lines above \
                     it; state why the contract holds"
                        .into(),
                ));
            }
        }

        // --- cast-truncation ----------------------------------------
        if deterministic
            && text == "as"
            && tok.kind == TokenKind::Ident
            && TRUNCATING_TARGETS.contains(&next_text)
        {
            out.push(Diagnostic::new(
                "cast-truncation",
                &f.path,
                line,
                format!(
                    "`as {next_text}` can silently truncate an index; use \
                     `{next_text}::try_from(..).expect(..)`, a checked id constructor, \
                     or waive with a bound argument"
                ),
            ));
        }

        // --- unbounded-queue ----------------------------------------
        let unbounded = (text == "channel"
            && next_text == "("
            && prev_text == "::"
            && prev
                .and_then(|j| f.prev_sig(j))
                .is_some_and(|j| f.token_text(j) == "mpsc"))
            || (text == "unbounded_channel" && next_text == "(")
            || (text == "unbounded"
                && next_text == "("
                && next
                    .and_then(|j| f.next_sig(j))
                    .is_some_and(|j| f.token_text(j) == ")"));
        if unbounded {
            out.push(Diagnostic::new(
                "unbounded-queue",
                &f.path,
                line,
                format!(
                    "`{text}` has no capacity bound; overload must surface as \
                     backpressure, not memory growth — use a bounded queue or waive \
                     with a boundedness argument"
                ),
            ));
        }
    }
}

/// `true` when token `i` is followed by `::segment` and then `(`
/// (e.g. `Instant::now()`), or `::segment` `(` with further qualification
/// like `thread::current()`.
fn is_path_call(f: &ParsedFile, i: usize, segment: &str) -> bool {
    let Some(sep) = f.next_sig(i) else {
        return false;
    };
    if f.token_text(sep) != "::" {
        return false;
    }
    let Some(seg) = f.next_sig(sep) else {
        return false;
    };
    f.token_text(seg) == segment
}

/// Doc-coverage rules over the item tree.
fn item_rules(f: &ParsedFile, out: &mut Vec<Diagnostic>) {
    if !in_crates(&f.path, &DOC_ENFORCED_CRATES) {
        return;
    }
    for item in &f.items {
        if item.kind != crate::items::ItemKind::Fn || item.cfg_test || !item.is_pub {
            continue;
        }
        if item.doc.is_empty() {
            out.push(Diagnostic::new(
                "pub-docs",
                &f.path,
                item.line,
                format!("`pub fn {}` has no doc comment", item.name),
            ));
            // One missing doc block fires one diagnostic, not three.
            continue;
        }
        if !item.is_method && !item.has_examples_doc() {
            out.push(Diagnostic::new(
                "doc-examples",
                &f.path,
                item.line,
                format!(
                    "`pub fn {}` is documented without an `# Examples` section; add a \
                     runnable example or waive with a reason",
                    item.name
                ),
            ));
        }
        if item.returns_result && !item.has_errors_doc() {
            out.push(Diagnostic::new(
                "errors-doc",
                &f.path,
                item.line,
                format!(
                    "`pub fn {}` returns `Result` but its doc has no `# Errors` \
                     section; document the failure modes",
                    item.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ParsedFile;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        scan_all(&[ParsedFile::parse(path, src)]).diagnostics
    }

    fn unwaived(path: &str, src: &str) -> Vec<Diagnostic> {
        diags(path, src).into_iter().filter(|d| !d.waived).collect()
    }

    #[test]
    fn panic_rule_fires_on_silent_panic_paths() {
        let src = "fn f() {\n  x.unwrap();\n  y.expect(msg);\n  panic!(\"no\");\n  unreachable!();\n  todo!();\n}\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "panic").count(), 5);
    }

    #[test]
    fn panic_rule_allows_messaged_assertions() {
        let src = "fn f() {\n  x.expect(\"structural invariant: frontier nodes are active\");\n  unreachable!(\"threshold reached implies an active in-neighbour\");\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_ignores_lookalikes() {
        let src = "fn f() {\n  x.unwrap_or(0);\n  x.unwrap_or_else(y);\n  dont_panic();\n  let unwrap = 1;\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_skips_tests_docs_and_bins() {
        let src =
            "/// x.unwrap()\nfn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
        let bin = "fn main() { x.unwrap(); }\n";
        assert!(unwaived("crates/bench/src/bin/fig9.rs", bin).is_empty());
    }

    #[test]
    fn panic_and_indexing_exempt_documented_panics() {
        let src = "/// Accessor.\n///\n/// # Panics\n///\n/// Panics if out of bounds.\npub fn round(&self, t: usize) -> u8 {\n  assert!(t < self.len());\n  self.rounds[t].unwrap()\n}\n";
        let d = unwaived("crates/metrics/src/a.rs", src);
        assert!(d.iter().all(|d| d.rule != "panic" && d.rule != "indexing"));
    }

    #[test]
    fn indexing_rule_flags_subscripts_only() {
        let src = "fn f(v: &[u32], m: [u8; 3]) -> u32 {\n  let a = [1, 2, 3];\n  for x in [4, 5] {}\n  #[allow(dead_code)]\n  let y: Vec<u32> = vec![7];\n  v[0] + a[1]\n}\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "indexing").count(), 2);
        assert!(d.iter().all(|d| d.line == 6));
    }

    #[test]
    fn indexing_rule_skips_lifetimes_types_and_strings() {
        let src = "fn f<'a>(line: &'a [u8], fields: &mut [&'a [u8]; 4]) -> &'a [u8] {\n  let s = \"x[0]\"; // b[1]\n  line\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn determinism_rule_scoped_to_simulation_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        let d = unwaived("crates/diffusion/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "determinism").count(), 3);
        assert!(unwaived("crates/bench/src/a.rs", src)
            .iter()
            .all(|d| d.rule != "determinism"));
    }

    #[test]
    fn telemetry_rule_scoping() {
        let src = "fn f() {\n  let t0 = Instant::now();\n  let wall = SystemTime::now();\n}\n";
        let d = unwaived("crates/service/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "telemetry").count(), 2);
        for path in ["crates/telemetry/src/a.rs", "crates/bench/src/a.rs"] {
            assert!(
                unwaived(path, src).iter().all(|d| d.rule != "telemetry"),
                "{path}"
            );
        }
        // Deterministic crates fire `determinism` for the same site.
        let d = unwaived("crates/core/src/a.rs", src);
        assert!(d.iter().any(|d| d.rule == "determinism"));
        assert!(d.iter().all(|d| d.rule != "telemetry"));
    }

    #[test]
    fn unsafe_requires_waiver_and_safety_comment() {
        let src = "fn f() { unsafe { work() } }\n";
        let d = unwaived("crates/service/src/a.rs", src);
        assert!(d.iter().any(|d| d.rule == "unsafe"));
        assert!(d.iter().any(|d| d.rule == "safety-comment"));
        // With a SAFETY comment, only the waivable `unsafe` finding stays.
        let src = "// lint:allow-file(unsafe) delegates to std's allocator\nfn f() {\n  // SAFETY: delegates to System.alloc with the same layout\n  unsafe { work() }\n}\n";
        let d = unwaived("crates/service/src/a.rs", src);
        assert!(d.iter().all(|d| d.rule != "safety-comment"), "{d:?}");
        assert!(d.iter().all(|d| d.rule != "unsafe"));
    }

    #[test]
    fn cast_truncation_flags_narrowing_index_casts() {
        let src = "fn f(n: usize) -> u32 { n as u32 }\nfn ok(n: usize) -> u64 { n as u64 }\nfn fl(n: usize) -> f64 { n as f64 }\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "cast-truncation").count(), 1);
        // Not enforced outside the deterministic crates.
        assert!(unwaived("crates/service/src/a.rs", src).is_empty());
    }

    #[test]
    fn unbounded_queue_rule() {
        let src = "fn f() {\n  let (tx, rx) = mpsc::channel();\n  let (a, b) = crossbeam::channel::unbounded();\n  let (c, d) = tokio::sync::mpsc::unbounded_channel();\n  let bounded = mpsc::sync_channel(4);\n}\n";
        let d = unwaived("crates/service/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "unbounded-queue").count(), 3);
    }

    #[test]
    fn pub_docs_doc_examples_and_errors_doc() {
        let src = "/// documented\n///\n/// # Examples\n///\n/// ```\n/// ```\npub fn good() {}\n\n#[inline]\npub fn bad() {}\n\n/// No example.\npub fn no_example() {}\n\n/// Result fn.\n///\n/// # Examples\n///\n/// ```\n/// ```\npub fn fallible() -> Result<(), E> { Ok(()) }\n";
        let d = unwaived("crates/core/src/a.rs", src);
        assert!(d
            .iter()
            .any(|d| d.rule == "pub-docs" && d.message.contains("bad")));
        assert!(d
            .iter()
            .any(|d| d.rule == "doc-examples" && d.message.contains("no_example")));
        assert!(d
            .iter()
            .any(|d| d.rule == "errors-doc" && d.message.contains("fallible")));
        // Undocumented fns fire pub-docs only, not three diagnostics.
        assert_eq!(
            d.iter()
                .filter(|d| d.message.contains("`pub fn bad`"))
                .count(),
            1
        );
        // Not enforced outside graph/core.
        assert!(unwaived("crates/metrics/src/a.rs", "pub fn undoc() {}\n").is_empty());
    }

    #[test]
    fn errors_doc_accepts_errors_section() {
        let src = "/// Doc.\n///\n/// # Errors\n///\n/// Fails on bad input.\n///\n/// # Examples\n///\n/// ```\n/// ```\npub fn fallible() -> Result<(), E> { Ok(()) }\n";
        assert!(unwaived("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn methods_need_docs_but_not_examples() {
        let src = "impl T {\n    /// Doc.\n    pub fn method(&self) {}\n    pub fn undocumented(&self) {}\n}\n";
        let d = unwaived("crates/core/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "pub-docs");
        assert!(d[0].message.contains("undocumented"));
    }

    #[test]
    fn waiver_same_line_and_preceding_line() {
        let src = "fn f() {\n  x.unwrap(); // lint:allow(panic) infallible: checked above\n  // lint:allow(panic) infallible: y is Some by construction\n  y.unwrap();\n}\n";
        let all = diags("crates/graph/src/a.rs", src);
        assert_eq!(
            all.iter().filter(|d| d.rule == "panic" && d.waived).count(),
            2
        );
        assert!(all.iter().all(|d| d.waived || d.rule != "panic"));
        assert!(all.iter().all(|d| d.rule != "dead-waiver"));
    }

    #[test]
    fn file_waiver_covers_whole_file() {
        let src = "// lint:allow-file(indexing) CSR offsets are structurally in-bounds\nfn f(v: &[u32]) -> u32 { v[0] + v[1] }\n";
        let all = diags("crates/graph/src/a.rs", src);
        assert_eq!(all.iter().filter(|d| d.rule == "indexing").count(), 2);
        assert!(all.iter().all(|d| d.rule != "indexing" || d.waived));
    }

    #[test]
    fn dead_waivers_are_diagnosed_line_and_file_scope() {
        let src = "// lint:allow(panic) nothing here panics\nfn f() {}\n// lint:allow-file(indexing) nothing here indexes\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "dead-waiver").count(), 2);
        assert!(d.iter().any(|d| d.message.contains("file waiver")));
    }

    #[test]
    fn malformed_waivers_are_diagnosed() {
        for src in [
            "fn f() {} // lint:allow(panic)\n",
            "fn f() {} // lint:allow(nonsense) reason\n",
        ] {
            let d = unwaived("crates/graph/src/a.rs", src);
            assert_eq!(d.len(), 1, "{src:?}");
            assert_eq!(d[0].rule, "waiver");
        }
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "fn f() {\n  x.unwrap(); // lint:allow(indexing) mismatched\n}\n";
        let d = diags("crates/graph/src/a.rs", src);
        assert!(d.iter().any(|d| d.rule == "panic" && !d.waived));
        assert!(d.iter().any(|d| d.rule == "dead-waiver"));
    }

    #[test]
    fn counts_aggregate() {
        let f1 = ParsedFile::parse("crates/graph/src/a.rs", "fn f() { x.unwrap(); }\n");
        let f2 = ParsedFile::parse(
            "crates/graph/src/b.rs",
            "fn g() { y.unwrap() } // lint:allow(panic) provably Some\n",
        );
        let outcome = scan_all(&[f1, f2]);
        let stats = outcome.per_rule["panic"];
        assert_eq!(stats.violations, 1);
        assert_eq!(stats.waived_findings, 1);
        assert_eq!(stats.waivers, 1);
        assert_eq!(outcome.waiver_total, 1);
        assert_eq!(outcome.dead_waivers, 0);
    }
}
