//! The project lint rules, waiver handling and the scanning driver.
//!
//! Rules (see DESIGN.md "Static analysis & invariants"):
//!
//! * `panic` — no `unwrap()` / `expect(` / `panic!` / `unreachable!` /
//!   `todo!` / `unimplemented!` in non-test library code;
//! * `indexing` — no slice/array indexing `x[i]` in non-test library
//!   code (panics on bad indices; prefer `get`, iterators, or waive with
//!   a bounds argument);
//! * `determinism` — no `thread_rng` / `SystemTime` / `Instant::now` and
//!   no `HashMap` / `HashSet` (iteration-order nondeterminism) inside the
//!   crates feeding the deterministic simulation layer;
//! * `pub-docs` — every `pub fn` in `crates/graph` and `crates/core`
//!   carries a doc comment;
//! * `doc-examples` — every *top-level* `pub fn` (a free function, not an
//!   inherent/trait method) in the doc-enforced crates whose doc comment
//!   lacks an `# Examples` section. Runnable examples double as doc tests
//!   and keep the public API honest; waive where an example would be
//!   meaningless (e.g. a function that only makes sense against a live
//!   network);
//! * `unsafe` — no `unsafe` code anywhere in the workspace;
//! * `unbounded-queue` — no unbounded channel/queue constructors
//!   (`mpsc::channel`, `unbounded_channel`, `unbounded()`) in library
//!   code: a producer that can always enqueue hides overload until the
//!   process dies. Use a bounded queue with explicit backpressure (see
//!   `isomit_service::queue::BoundedQueue`) or waive with a boundedness
//!   argument;
//! * `telemetry` — no ad-hoc clock reads (`Instant::now` /
//!   `SystemTime::now`) in library crates outside `crates/telemetry`
//!   and `crates/bench`: latency measurement must go through
//!   `isomit-telemetry` spans/histograms so it shows up in the
//!   registry, respects the disabled mode, and stays consistent across
//!   components. Timestamps that are *not* latency measurement (e.g.
//!   deadline bookkeeping) are waived with a justification. Crates
//!   under the `determinism` rule are exempt here — clock reads there
//!   are already forbidden outright.
//!
//! A diagnostic is silenced by an inline waiver on the same or the
//! preceding line — `// lint:allow(<rule>) <reason>` — or for a whole
//! file by `// lint:allow-file(<rule>) <reason>`. Waivers must name a
//! known rule and give a non-empty reason; unused line waivers are
//! themselves diagnostics, so stale ones cannot accumulate.

use crate::scan::SourceFile;
use std::collections::BTreeMap;

/// Every rule known to the linter, in report order.
pub const RULES: [&str; 9] = [
    "panic",
    "indexing",
    "determinism",
    "pub-docs",
    "doc-examples",
    "unsafe",
    "unbounded-queue",
    "telemetry",
    "waiver",
];

/// Crates whose sources feed the deterministic simulation layer; the
/// `determinism` rule is scoped to them (`isomit-bench` is the timing
/// harness and legitimately reads clocks).
const DETERMINISTIC_CRATES: [&str; 6] = [
    "crates/graph/",
    "crates/diffusion/",
    "crates/forest/",
    "crates/core/",
    "crates/datasets/",
    "crates/metrics/",
];

/// Crates in which every `pub fn` must have a doc comment.
const DOC_ENFORCED_CRATES: [&str; 2] = ["crates/graph/", "crates/core/"];

/// Crates the `telemetry` rule does not apply to: the telemetry crate
/// itself (it owns the clock) and the bench harness (timing *is* its
/// job, and its output never ships in a library).
const TELEMETRY_EXEMPT_CRATES: [&str; 2] = ["crates/telemetry/", "crates/bench/"];

/// One lint finding at a specific source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// `true` if an inline or file waiver covers this diagnostic.
    pub waived: bool,
}

#[derive(Debug)]
struct Waiver {
    rule: String,
    line: usize,
    file_scope: bool,
    used: bool,
    malformed: Option<String>,
}

/// Scans one pre-processed file and returns all diagnostics (waived ones
/// included, flagged).
pub fn scan_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut waivers = collect_waivers(file);
    let mut raw: Vec<Diagnostic> = Vec::new();

    let in_deterministic = DETERMINISTIC_CRATES
        .iter()
        .any(|c| file.path.starts_with(c));
    let docs_enforced = DOC_ENFORCED_CRATES.iter().any(|c| file.path.starts_with(c));
    // Deterministic crates are exempt from the telemetry rule: their
    // clock reads already fire `determinism`, and one site should not
    // need two waivers.
    let telemetry_enforced = file.path.starts_with("crates/")
        && !in_deterministic
        && !TELEMETRY_EXEMPT_CRATES
            .iter()
            .any(|c| file.path.starts_with(c));

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        for (needle, what) in [
            (".unwrap()", "`unwrap()` can panic"),
            (".expect(", "`expect()` can panic"),
            ("panic!", "`panic!` in library code"),
            ("unreachable!", "`unreachable!` in library code"),
            ("todo!", "`todo!` in library code"),
            ("unimplemented!", "`unimplemented!` in library code"),
        ] {
            for pos in match_token(code, needle) {
                let _ = pos;
                raw.push(Diagnostic {
                    rule: "panic",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "{what}; return a Result or waive with a proof of infallibility"
                    ),
                    waived: false,
                });
            }
        }

        for _ in find_indexing(code) {
            raw.push(Diagnostic {
                rule: "indexing",
                path: file.path.clone(),
                line: lineno,
                message:
                    "slice indexing can panic; use `get`/iterators or waive with a bounds argument"
                        .to_owned(),
                waived: false,
            });
        }

        if in_deterministic {
            for (needle, what) in [
                ("thread_rng", "ambient RNG breaks seeded determinism"),
                ("SystemTime", "wall-clock reads break determinism"),
                ("Instant::now", "monotonic-clock reads break determinism"),
                ("HashMap", "HashMap iteration order is nondeterministic"),
                ("HashSet", "HashSet iteration order is nondeterministic"),
            ] {
                for _ in match_word(code, needle) {
                    raw.push(Diagnostic {
                        rule: "determinism",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "{what}; use seeded streams / BTree collections or waive with an order-independence argument"
                        ),
                        waived: false,
                    });
                }
            }
        }

        if docs_enforced {
            if let Some(name) = undocumented_pub_fn(file, idx) {
                raw.push(Diagnostic {
                    rule: "pub-docs",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!("`pub fn {name}` has no doc comment"),
                    waived: false,
                });
            }
            if let Some(name) = top_level_pub_fn_without_example(file, idx) {
                raw.push(Diagnostic {
                    rule: "doc-examples",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "`pub fn {name}` is documented without an `# Examples` section; \
                         add a runnable example or waive with a reason"
                    ),
                    waived: false,
                });
            }
        }

        for _ in match_word(code, "unsafe") {
            raw.push(Diagnostic {
                rule: "unsafe",
                path: file.path.clone(),
                line: lineno,
                message: "`unsafe` is forbidden workspace-wide".to_owned(),
                waived: false,
            });
        }

        if telemetry_enforced {
            for needle in ["Instant::now", "SystemTime::now"] {
                for _ in match_word(code, needle) {
                    raw.push(Diagnostic {
                        rule: "telemetry",
                        path: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "`{needle}` in library code; measure latency through \
                             `isomit-telemetry` spans/histograms, or waive if this \
                             timestamp is not a latency measurement"
                        ),
                        waived: false,
                    });
                }
            }
        }

        for (needle, token) in [
            (match_token(code, "mpsc::channel("), "mpsc::channel"),
            (match_word(code, "unbounded_channel"), "unbounded_channel"),
            (match_token(code, "unbounded()"), "unbounded()"),
        ] {
            for _ in needle {
                raw.push(Diagnostic {
                    rule: "unbounded-queue",
                    path: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "`{token}` has no capacity bound; overload must surface as backpressure, \
                         not memory growth — use a bounded queue or waive with a boundedness argument"
                    ),
                    waived: false,
                });
            }
        }
    }

    // Apply waivers.
    for d in &mut raw {
        for w in waivers.iter_mut() {
            if w.malformed.is_some() || w.rule != d.rule {
                continue;
            }
            let covers = w.file_scope || w.line == d.line || w.line + 1 == d.line;
            if covers {
                w.used = true;
                d.waived = true;
                break;
            }
        }
    }

    // Malformed or unused waivers are diagnostics themselves.
    for w in &waivers {
        if let Some(why) = &w.malformed {
            raw.push(Diagnostic {
                rule: "waiver",
                path: file.path.clone(),
                line: w.line,
                message: format!("malformed waiver: {why}"),
                waived: false,
            });
        } else if !w.used && !w.file_scope {
            raw.push(Diagnostic {
                rule: "waiver",
                path: file.path.clone(),
                line: w.line,
                message: format!("unused waiver for rule `{}`; remove it", w.rule),
                waived: false,
            });
        }
    }

    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    raw
}

fn collect_waivers(file: &SourceFile) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let comment = line.comment.trim();
        for (marker, file_scope) in [("lint:allow-file(", true), ("lint:allow(", false)] {
            let Some(start) = comment.find(marker) else {
                continue;
            };
            let rest = &comment[start + marker.len()..];
            let Some(close) = rest.find(')') else {
                out.push(Waiver {
                    rule: String::new(),
                    line: idx + 1,
                    file_scope,
                    used: false,
                    malformed: Some("missing `)`".to_owned()),
                });
                continue;
            };
            let rule = rest[..close].trim().to_owned();
            let reason = rest[close + 1..].trim();
            let malformed = if !RULES.contains(&rule.as_str()) || rule == "waiver" {
                Some(format!("unknown rule `{rule}`"))
            } else if reason.is_empty() {
                Some("waiver has no reason".to_owned())
            } else {
                None
            };
            out.push(Waiver {
                rule,
                line: idx + 1,
                file_scope,
                used: false,
                malformed,
            });
            break; // `lint:allow-file(` also contains `lint:allow(`… not, but one waiver per line.
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Occurrences of `needle` in `code` that are not part of a longer
/// identifier on either side (the needle itself may start with `.`).
fn match_token(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let pos = from + rel;
        let before_ok = match code[..pos].chars().next_back() {
            Some(c) => !is_ident_char(c) || needle.starts_with('.'),
            None => true,
        };
        // For `.expect(`-style needles the trailing delimiter is part of
        // the needle; for macro names the `!` is. Nothing to check after.
        if before_ok {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// Whole-word occurrences of `needle`.
fn match_word(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let pos = from + rel;
        let before_ok = !code[..pos].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !code[pos + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

/// Keywords after which a `[` opens an array/slice *expression or
/// pattern*, not an indexing operation.
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "in", "return", "if", "while", "match", "else", "mut", "ref", "move", "box", "as",
];

/// Positions of `[` that lexically look like indexing: preceded (modulo
/// spaces) by an identifier, `)`, `]` or `?`, where the identifier is not
/// a keyword introducing an array literal/pattern. `#[attr]`, `vec![..]`
/// and type positions (`[T; N]` after `:` / `<` / `(`) never match.
fn find_indexing(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (pos, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        // Find previous non-space character.
        let mut j = pos;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = bytes[j - 1] as char;
        if prev == ')' || prev == ']' || prev == '?' {
            out.push(pos);
            continue;
        }
        if is_ident_char(prev) {
            // Extract the identifier and reject keywords.
            let mut k = j - 1;
            while k > 0 && is_ident_char(bytes[k - 1] as char) {
                k -= 1;
            }
            // A lifetime before a slice type (`&'a [u8]`) is type
            // syntax, not a subscript.
            if k > 0 && bytes[k - 1] == b'\'' {
                continue;
            }
            let ident = &code[k..j];
            if !NON_INDEX_KEYWORDS.contains(&ident) {
                out.push(pos);
            }
        }
    }
    out
}

/// If line `idx` declares an undocumented `pub fn`, returns its name.
///
/// Attribute lines (`#[...]`) between the doc comment and the `fn` are
/// skipped, as rustdoc does.
fn undocumented_pub_fn(file: &SourceFile, idx: usize) -> Option<String> {
    let code = file.lines[idx].code.trim_start();
    let rest = code
        .strip_prefix("pub fn ")
        .or_else(|| code.strip_prefix("pub const fn "))
        .or_else(|| code.strip_prefix("pub async fn "))?;
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    // Walk upward over attributes and blank lines looking for a doc line.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        if l.is_doc {
            return None;
        }
        let t = l.code.trim();
        let attr_or_blank = t.is_empty() || t.starts_with("#[") || t.ends_with(']');
        if !attr_or_blank {
            return Some(name);
        }
    }
    Some(name)
}

/// If line `idx` declares a *top-level* `pub fn` (column 0 — a free
/// function, not an inherent or trait method) whose doc comment exists
/// but has no `# Examples` section, returns its name.
///
/// Functions with no doc comment at all are left to the `pub-docs` rule:
/// one missing doc block should fire one diagnostic, not two.
fn top_level_pub_fn_without_example(file: &SourceFile, idx: usize) -> Option<String> {
    let code = file.lines[idx].code.as_str();
    // Methods are indented; only column-0 declarations are free functions.
    let rest = code
        .strip_prefix("pub fn ")
        .or_else(|| code.strip_prefix("pub const fn "))
        .or_else(|| code.strip_prefix("pub async fn "))?;
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    // Walk upward over the attached doc block (doc lines, attributes,
    // blank lines) looking for an `# Examples` heading.
    let mut saw_doc = false;
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &file.lines[i];
        if l.is_doc {
            saw_doc = true;
            if l.comment.contains("# Examples") {
                return None;
            }
            continue;
        }
        let t = l.code.trim();
        if !(t.is_empty() || t.starts_with("#[") || t.ends_with(']')) {
            break;
        }
    }
    saw_doc.then_some(name)
}

/// Scans many files and aggregates per-rule counts.
pub fn scan_all(files: &[SourceFile]) -> (Vec<Diagnostic>, BTreeMap<&'static str, (usize, usize)>) {
    let mut diagnostics = Vec::new();
    for f in files {
        diagnostics.extend(scan_file(f));
    }
    let mut counts: BTreeMap<&'static str, (usize, usize)> =
        RULES.iter().map(|&r| (r, (0usize, 0usize))).collect();
    for d in &diagnostics {
        let entry = counts.entry(d.rule).or_default();
        if d.waived {
            entry.1 += 1;
        } else {
            entry.0 += 1;
        }
    }
    (diagnostics, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::preprocess;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        scan_file(&preprocess(path, src))
    }

    fn unwaived(path: &str, src: &str) -> Vec<Diagnostic> {
        diags(path, src).into_iter().filter(|d| !d.waived).collect()
    }

    #[test]
    fn panic_rule_fires_on_unwrap_expect_macros() {
        let src = "fn f() {\n  x.unwrap();\n  y.expect(\"m\");\n  panic!(\"no\");\n  unreachable!();\n}\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "panic").count(), 4);
    }

    #[test]
    fn panic_rule_ignores_lookalikes() {
        let src = "fn f() {\n  x.unwrap_or(0);\n  x.unwrap_or_else(y);\n  dont_panic();\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_skips_tests_and_docs() {
        let src =
            "/// x.unwrap()\nfn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn indexing_rule_skips_lifetimes_in_types() {
        let src = "fn f<'a>(line: &'a [u8], fields: &mut [&'a [u8]; 4]) -> &'a [u8] {\n  line\n}\n";
        assert!(unwaived("crates/graph/src/a.rs", src).is_empty());
    }

    #[test]
    fn indexing_rule_flags_subscripts_only() {
        let src = "fn f(v: &[u32], m: [u8; 3]) -> u32 {\n  let a = [1, 2, 3];\n  for x in [4, 5] {}\n  #[allow(dead_code)]\n  let y: Vec<u32> = vec![7];\n  v[0] + a[1]\n}\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "indexing").count(), 2);
        assert!(d.iter().all(|d| d.line == 6));
    }

    #[test]
    fn determinism_rule_scoped_to_simulation_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let d = unwaived("crates/diffusion/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "determinism").count(), 2);
        // Same source in the bench crate: timing harness is exempt.
        assert!(unwaived("crates/bench/src/a.rs", src)
            .iter()
            .all(|d| d.rule != "determinism"));
    }

    #[test]
    fn pub_docs_rule() {
        let src = "/// documented\npub fn good() {}\n\n#[inline]\npub fn bad() {}\n";
        let d: Vec<_> = unwaived("crates/core/src/a.rs", src)
            .into_iter()
            .filter(|d| d.rule == "pub-docs")
            .collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("bad"));
        // Attributes between doc and fn are fine.
        let src = "/// doc\n#[inline]\npub fn ok() {}\n";
        assert!(unwaived("crates/core/src/a.rs", src)
            .iter()
            .all(|d| d.rule != "pub-docs"));
        // Not enforced outside graph/core.
        let src = "pub fn undoc() {}\n";
        assert!(unwaived("crates/metrics/src/a.rs", src).is_empty());
    }

    #[test]
    fn doc_examples_rule_flags_example_less_top_level_fns() {
        let src = "/// Documented but example-free.\npub fn bad() {}\n";
        let d = unwaived("crates/core/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "doc-examples");
        assert!(d[0].message.contains("bad"));
    }

    #[test]
    fn doc_examples_rule_accepts_examples_section() {
        let src = "/// Doc.\n///\n/// # Examples\n///\n/// ```\n/// a::good();\n/// ```\npub fn good() {}\n";
        assert!(unwaived("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn doc_examples_rule_skips_methods_and_undocumented_fns() {
        // Methods are indented — not top-level — and an undocumented fn
        // is `pub-docs` territory, not a second diagnostic.
        let src = "impl T {\n    /// Doc.\n    pub fn method(&self) {}\n}\npub fn undoc() {}\n";
        let d = unwaived("crates/core/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "pub-docs");
        // Not enforced outside the doc-enforced crates.
        let src = "/// Doc.\npub fn elsewhere() {}\n";
        assert!(unwaived("crates/service/src/a.rs", src).is_empty());
    }

    #[test]
    fn doc_examples_rule_is_waivable() {
        let src =
            "/// Doc.\n// lint:allow(doc-examples) needs a live TCP listener\npub fn dial() {}\n";
        let all = diags("crates/core/src/a.rs", src);
        assert!(all.iter().any(|d| d.rule == "doc-examples" && d.waived));
        assert!(all.iter().all(|d| d.rule != "waiver"));
    }

    #[test]
    fn unsafe_rule_everywhere() {
        let src = "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let d = unwaived("crates/bench/src/a.rs", src);
        assert!(d.iter().any(|d| d.rule == "unsafe"));
    }

    #[test]
    fn unbounded_queue_rule_flags_unbounded_constructors() {
        let src = "fn f() {\n  let (tx, rx) = mpsc::channel();\n  let (a, b) = crossbeam::channel::unbounded();\n  let (c, d) = tokio::sync::mpsc::unbounded_channel();\n}\n";
        let d = unwaived("crates/service/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "unbounded-queue").count(), 3);
    }

    #[test]
    fn unbounded_queue_rule_ignores_bounded_constructors() {
        let src = "fn f(n: usize) {\n  let (tx, rx) = mpsc::sync_channel(n);\n  let q = BoundedQueue::new(n);\n  let unbounded_flag = false;\n}\n";
        assert!(unwaived("crates/service/src/a.rs", src)
            .iter()
            .all(|d| d.rule != "unbounded-queue"));
    }

    #[test]
    fn unbounded_queue_rule_is_waivable() {
        let src = "fn f() {\n  // lint:allow(unbounded-queue) drained every tick by a dedicated consumer\n  let (tx, rx) = mpsc::channel();\n}\n";
        let all = diags("crates/service/src/a.rs", src);
        assert!(all.iter().any(|d| d.rule == "unbounded-queue" && d.waived));
        // The waiver was consumed, so it is not itself diagnosed.
        assert!(all.iter().all(|d| d.rule != "waiver"));
    }

    #[test]
    fn telemetry_rule_flags_raw_clock_reads_in_library_crates() {
        let src = "fn f() {\n  let t0 = Instant::now();\n  let wall = SystemTime::now();\n}\n";
        let d = unwaived("crates/service/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "telemetry").count(), 2);
    }

    #[test]
    fn telemetry_rule_exempts_telemetry_bench_and_deterministic_crates() {
        let src = "fn f() { let t0 = Instant::now(); }\n";
        // The telemetry crate owns the clock; bench is the timing harness.
        for path in ["crates/telemetry/src/a.rs", "crates/bench/src/a.rs"] {
            assert!(
                unwaived(path, src).iter().all(|d| d.rule != "telemetry"),
                "{path}"
            );
        }
        // Deterministic crates fire `determinism` for the same site, not
        // `telemetry` — one site, one rule, one waiver.
        let d = unwaived("crates/core/src/a.rs", src);
        assert!(d.iter().any(|d| d.rule == "determinism"));
        assert!(d.iter().all(|d| d.rule != "telemetry"));
    }

    #[test]
    fn telemetry_rule_is_waivable() {
        let src = "fn f() {\n  // lint:allow(telemetry) arrival timestamp for deadline math, not a latency probe\n  let received = Instant::now();\n}\n";
        let all = diags("crates/service/src/a.rs", src);
        assert!(all.iter().any(|d| d.rule == "telemetry" && d.waived));
        assert!(all.iter().all(|d| d.rule != "waiver"));
    }

    #[test]
    fn telemetry_rule_ignores_span_helpers() {
        let src = "fn f(h: &Histogram) {\n  let _span = h.span();\n  let d = start.elapsed();\n}\n";
        assert!(unwaived("crates/service/src/a.rs", src).is_empty());
    }

    #[test]
    fn waiver_same_line_and_preceding_line() {
        let src = "fn f() {\n  x.unwrap(); // lint:allow(panic) infallible: checked above\n  // lint:allow(panic) infallible: y is Some by construction\n  y.unwrap();\n}\n";
        let all = diags("crates/graph/src/a.rs", src);
        assert_eq!(
            all.iter().filter(|d| d.rule == "panic" && d.waived).count(),
            2
        );
        assert!(all.iter().all(|d| d.waived || d.rule != "panic"));
    }

    #[test]
    fn file_waiver_covers_whole_file() {
        let src = "// lint:allow-file(indexing) CSR offsets are structurally in-bounds\nfn f(v: &[u32]) -> u32 { v[0] + v[1] }\n";
        let all = diags("crates/graph/src/a.rs", src);
        assert_eq!(all.iter().filter(|d| d.rule == "indexing").count(), 2);
        assert!(all.iter().all(|d| d.rule != "indexing" || d.waived));
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_apply() {
        let src = "fn f() {\n  x.unwrap(); // lint:allow(indexing) mismatched\n}\n";
        let d = diags("crates/graph/src/a.rs", src);
        // Panic diagnostic stays unwaived; the indexing waiver is unused.
        assert!(d.iter().any(|d| d.rule == "panic" && !d.waived));
        assert!(d.iter().any(|d| d.rule == "waiver"));
    }

    #[test]
    fn malformed_waivers_are_diagnosed() {
        for src in [
            "fn f() {} // lint:allow(panic)\n",           // no reason
            "fn f() {} // lint:allow(nonsense) reason\n", // unknown rule
        ] {
            let d = unwaived("crates/graph/src/a.rs", src);
            assert_eq!(d.len(), 1, "{src:?}");
            assert_eq!(d[0].rule, "waiver");
        }
    }

    #[test]
    fn unused_waiver_is_diagnosed() {
        let src = "// lint:allow(panic) nothing here panics\nfn f() {}\n";
        let d = unwaived("crates/graph/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unused waiver"));
    }

    #[test]
    fn counts_aggregate() {
        let f1 = preprocess("crates/graph/src/a.rs", "fn f() { x.unwrap(); }\n");
        let f2 = preprocess(
            "crates/graph/src/b.rs",
            "fn g() { y.unwrap() } // lint:allow(panic) provably Some\n",
        );
        let (d, counts) = scan_all(&[f1, f2]);
        assert_eq!(d.len(), 2);
        assert_eq!(counts["panic"], (1, 1));
    }
}
