//! `cargo run -p xtask -- bench-check` — the CI bench-regression gate.
//!
//! Reads the committed benchmark artifacts (`BENCH_montecarlo.json`,
//! `BENCH_scale.json`) and the committed policy file
//! (`bench_baselines.json`) and fails when:
//!
//! * any entry carries a `bit_identical` metric that is not `1` — a
//!   parallel or wide path diverged from its scalar reference;
//! * a summary taken with fewer than two rayon threads records a
//!   parallel-vs-sequential speedup (a 1-thread "parallel" run measures
//!   scheduling overhead, not parallelism, and must not set a baseline);
//! * the wide-vs-scalar Monte-Carlo speedup falls below the committed
//!   floor for its artifact;
//! * `sampling_ns` in `BENCH_scale.json` regresses more than 25% against
//!   the baseline recorded for the **same workload** (nodes, edges,
//!   snapshot count). Workloads without a committed baseline are warned
//!   about and skipped, so a full-scale local artifact never trips a
//!   smoke-scale gate (and vice versa);
//! * any detector's F1 on the paper-family workload (the `epinions_mfc`
//!   cell of `BENCH_detectors.json`) falls below its committed
//!   `floors.detector_f1_<label>` floor — a broken estimator must not
//!   land silently even when the artifact was regenerated;
//! * the incremental watch-session amortized speedup over cold
//!   recompute (`speedup_amortized` in `BENCH_incremental.json`) falls
//!   below `floors.incremental_speedup`, or any of its answers diverged
//!   from the cold reference (`bit_identical`);
//! * the serving layer's cached-snapshot throughput (`service_rps` in
//!   `BENCH_service.json`'s `service/summary` entry) falls below
//!   `floors.service_rps`, its hot-path tail latency (`hot_p99_ns`)
//!   exceeds `ceilings.service_hot_p99_ns`, or the load generator saw
//!   any answer diverge from the in-process oracle (`wrong_answers`).
//!
//! `--update-baselines` rewrites the sampling baselines in
//! `bench_baselines.json` from the current artifacts, preserving the
//! hand-committed speedup/F1/throughput floors and latency ceilings.

use isomit_graph::json::Value;
use std::fs;
use std::path::Path;

/// Fraction by which `sampling_ns` may exceed its baseline before the
/// gate fails.
const SAMPLING_TOLERANCE: f64 = 0.25;

/// Outcome of one bench-check run: human-readable failures (empty means
/// the gate passes) and non-fatal warnings.
#[derive(Debug, Default)]
pub struct BenchCheckOutcome {
    /// Gate violations; any entry fails the command.
    pub failures: Vec<String>,
    /// Skipped or missing-but-tolerated checks.
    pub warnings: Vec<String>,
}

/// One parsed `metrics` map of a bench entry.
struct Metrics<'a> {
    group: &'a str,
    id: &'a str,
    values: &'a [(String, Value)],
}

impl Metrics<'_> {
    fn get(&self, key: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
    }
}

/// Extracts every metrics entry of a parsed bench artifact.
fn metrics_entries(doc: &Value) -> Vec<Metrics<'_>> {
    let mut out = Vec::new();
    let Some(entries) = doc.get("entries").and_then(Value::as_array) else {
        return out;
    };
    for entry in entries {
        let (Some(group), Some(id)) = (
            entry.get("group").and_then(Value::as_str),
            entry.get("id").and_then(Value::as_str),
        ) else {
            continue;
        };
        if let Some(Value::Object(values)) = entry.get("metrics") {
            out.push(Metrics { group, id, values });
        }
    }
    out
}

fn load_json(path: &Path) -> Result<Value, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Value::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Looks up one metrics entry by `(group, id)`.
fn find<'a>(entries: &'a [Metrics<'a>], group: &str, id: &str) -> Option<&'a Metrics<'a>> {
    entries.iter().find(|m| m.group == group && m.id == id)
}

/// Every `bit_identical` metric anywhere in the artifact must be 1.
fn check_bit_identical(name: &str, entries: &[Metrics<'_>], out: &mut BenchCheckOutcome) {
    let mut seen = false;
    for m in entries {
        if let Some(flag) = m.get("bit_identical") {
            seen = true;
            if flag != 1.0 {
                out.failures.push(format!(
                    "{name}: {}/{} reports bit_identical = {flag} (parallel or wide \
                     path diverged from its scalar reference)",
                    m.group, m.id
                ));
            }
        }
    }
    if !seen {
        out.failures.push(format!(
            "{name}: no entry carries a bit_identical metric — artifact predates the \
             determinism gate; regenerate it"
        ));
    }
}

/// A summary taken with fewer than two threads must not record a
/// parallel-vs-sequential speedup.
fn check_thread_labels(name: &str, entries: &[Metrics<'_>], out: &mut BenchCheckOutcome) {
    for (group, id, key) in [
        ("mc", "summary", "speedup"),
        ("montecarlo_wide", "summary", "par_speedup"),
    ] {
        let Some(m) = find(entries, group, id) else {
            continue;
        };
        if m.get("threads").is_some_and(|t| t < 2.0) && m.get(key).is_some() {
            out.failures.push(format!(
                "{name}: {group}/{id} records `{key}` from a 1-thread run — a 1-thread \
                 \"parallel\" measurement is scheduling overhead, not a speedup; rerun \
                 with --threads >= 2"
            ));
        }
    }
}

/// The speedup metric `key` of `(group, id)` must meet `floor`.
fn check_speedup_floor(
    name: &str,
    entries: &[Metrics<'_>],
    group: &str,
    id: &str,
    key: &str,
    floor: f64,
    out: &mut BenchCheckOutcome,
) {
    let Some(m) = find(entries, group, id) else {
        out.failures.push(format!(
            "{name}: missing {group}/{id} entry — regenerate the artifact"
        ));
        return;
    };
    match m.get(key) {
        Some(speedup) if speedup < floor => out.failures.push(format!(
            "{name}: {group}/{id} {key} {speedup:.2}x is below the \
             committed floor {floor:.2}x (bench_baselines.json)"
        )),
        Some(_) => {}
        None => out
            .failures
            .push(format!("{name}: {group}/{id} has no `{key}` metric")),
    }
}

/// Detector labels gated by `floors.detector_f1_<label>`.
const GATED_DETECTORS: [&str; 5] = [
    "rid",
    "rid_tree",
    "rid_positive",
    "rumor_centrality",
    "jordan_center",
];

/// The bakeoff cell on the paper's own model and network family; F1
/// floors are pinned against it because it is the workload the paper
/// optimises for (model-mismatch cells are diagnostics, not gates).
const PAPER_FAMILY_GROUP: &str = "epinions_mfc";

/// Every gated detector's F1 on the paper-family cell must meet its
/// committed floor; a missing cell fails too (a regenerated artifact
/// that silently dropped a detector must not pass).
fn check_detector_f1(
    name: &str,
    entries: &[Metrics<'_>],
    baselines: &Value,
    out: &mut BenchCheckOutcome,
) -> Result<(), String> {
    for label in GATED_DETECTORS {
        let floor = floor(baselines, &format!("detector_f1_{label}"))?;
        let Some(m) = find(entries, PAPER_FAMILY_GROUP, label) else {
            out.failures.push(format!(
                "{name}: missing {PAPER_FAMILY_GROUP}/{label} entry — regenerate the \
                 artifact with the full detector grid"
            ));
            continue;
        };
        match m.get("f1") {
            Some(f1) if f1 < floor => out.failures.push(format!(
                "{name}: {PAPER_FAMILY_GROUP}/{label} F1 {f1:.3} is below the committed \
                 floor {floor:.3} (bench_baselines.json)"
            )),
            Some(_) => {}
            None => out.failures.push(format!(
                "{name}: {PAPER_FAMILY_GROUP}/{label} has no `f1` metric"
            )),
        }
    }
    Ok(())
}

/// The `(nodes, edges, snapshots)` workload key of a scale artifact.
fn scale_workload(entries: &[Metrics<'_>]) -> Option<(f64, f64, f64)> {
    let graph = find(entries, "dataset", "graph")?;
    let snaps = find(entries, "dataset", "snapshots")?;
    Some((
        graph.get("nodes")?,
        graph.get("edges")?,
        snaps.get("count")?,
    ))
}

/// `sampling_ns` must stay within `1 + SAMPLING_TOLERANCE` of the
/// baseline committed for the same workload.
fn check_sampling_regression(
    name: &str,
    entries: &[Metrics<'_>],
    baselines: &Value,
    out: &mut BenchCheckOutcome,
) {
    let Some((nodes, edges, snapshots)) = scale_workload(entries) else {
        out.failures.push(format!(
            "{name}: missing dataset/graph or dataset/snapshots entry"
        ));
        return;
    };
    let Some(sampling_ns) =
        find(entries, "dataset", "snapshots").and_then(|m| m.get("sampling_ns"))
    else {
        out.failures.push(format!(
            "{name}: dataset/snapshots has no `sampling_ns` metric"
        ));
        return;
    };
    let baseline = baselines
        .get("sampling")
        .and_then(Value::as_array)
        .into_iter()
        .flatten()
        .find(|b| {
            b.get("nodes").and_then(Value::as_f64) == Some(nodes)
                && b.get("edges").and_then(Value::as_f64) == Some(edges)
                && b.get("snapshots").and_then(Value::as_f64) == Some(snapshots)
        });
    let Some(baseline_ns) = baseline
        .and_then(|b| b.get("sampling_ns"))
        .and_then(Value::as_f64)
    else {
        out.warnings.push(format!(
            "{name}: no sampling baseline for workload nodes={nodes} edges={edges} \
             snapshots={snapshots}; skipping the regression check (run with \
             --update-baselines to record one)"
        ));
        return;
    };
    let limit = baseline_ns * (1.0 + SAMPLING_TOLERANCE);
    if sampling_ns > limit {
        out.failures.push(format!(
            "{name}: sampling_ns {sampling_ns:.0} exceeds baseline {baseline_ns:.0} by \
             more than {:.0}% (workload nodes={nodes} edges={edges} snapshots={snapshots})",
            SAMPLING_TOLERANCE * 100.0
        ));
    }
}

/// Reads a committed speedup floor out of the baselines policy file.
fn floor(baselines: &Value, key: &str) -> Result<f64, String> {
    baselines
        .get("floors")
        .and_then(|f| f.get(key))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("bench_baselines.json: missing floors.{key}"))
}

/// Reads a committed latency ceiling out of the baselines policy file.
fn ceiling(baselines: &Value, key: &str) -> Result<f64, String> {
    baselines
        .get("ceilings")
        .and_then(|c| c.get(key))
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("bench_baselines.json: missing ceilings.{key}"))
}

/// The serving layer's `service/summary` entry must meet the committed
/// throughput floor and tail-latency ceiling, and must have verified
/// every answer against the in-process oracle.
fn check_service(
    name: &str,
    entries: &[Metrics<'_>],
    baselines: &Value,
    out: &mut BenchCheckOutcome,
) -> Result<(), String> {
    let rps_floor = floor(baselines, "service_rps")?;
    let p99_ceiling = ceiling(baselines, "service_hot_p99_ns")?;
    let Some(m) = find(entries, "service", "summary") else {
        out.failures.push(format!(
            "{name}: missing service/summary entry — regenerate the artifact"
        ));
        return Ok(());
    };
    match m.get("service_rps") {
        Some(rps) if rps < rps_floor => out.failures.push(format!(
            "{name}: service/summary service_rps {rps:.0} is below the committed \
             floor {rps_floor:.0} (bench_baselines.json)"
        )),
        Some(_) => {}
        None => out.failures.push(format!(
            "{name}: service/summary has no `service_rps` metric"
        )),
    }
    match m.get("hot_p99_ns") {
        Some(p99) if p99 > p99_ceiling => out.failures.push(format!(
            "{name}: service/summary hot_p99_ns {p99:.0} exceeds the committed \
             ceiling {p99_ceiling:.0} (bench_baselines.json)"
        )),
        Some(_) => {}
        None => out.failures.push(format!(
            "{name}: service/summary has no `hot_p99_ns` metric"
        )),
    }
    match m.get("wrong_answers") {
        Some(wrong) if wrong != 0.0 => out.failures.push(format!(
            "{name}: service/summary reports {wrong} wrong answers — the daemon \
             diverged from the in-process pipeline"
        )),
        Some(_) => {}
        None => out.failures.push(format!(
            "{name}: service/summary has no `wrong_answers` metric"
        )),
    }
    Ok(())
}

/// Runs the gate over the artifacts at the workspace `root`.
///
/// With `update`, rewrites the sampling baselines from the current
/// `BENCH_scale.json` (inserting or replacing the entry for its
/// workload) while preserving the committed floors.
pub fn run_bench_check(root: &Path, update: bool) -> Result<BenchCheckOutcome, String> {
    let baselines_path = root.join("bench_baselines.json");
    let baselines = load_json(&baselines_path)?;
    let montecarlo = load_json(&root.join("BENCH_montecarlo.json"))?;
    let scale = load_json(&root.join("BENCH_scale.json"))?;
    let detectors = load_json(&root.join("BENCH_detectors.json"))?;
    let incremental = load_json(&root.join("BENCH_incremental.json"))?;
    let service = load_json(&root.join("BENCH_service.json"))?;
    let mc_entries = metrics_entries(&montecarlo);
    let scale_entries = metrics_entries(&scale);
    let detector_entries = metrics_entries(&detectors);
    let incremental_entries = metrics_entries(&incremental);
    let service_entries = metrics_entries(&service);

    let mut out = BenchCheckOutcome::default();
    check_bit_identical("BENCH_montecarlo.json", &mc_entries, &mut out);
    check_bit_identical("BENCH_scale.json", &scale_entries, &mut out);
    check_bit_identical("BENCH_detectors.json", &detector_entries, &mut out);
    check_bit_identical("BENCH_incremental.json", &incremental_entries, &mut out);
    check_detector_f1(
        "BENCH_detectors.json",
        &detector_entries,
        &baselines,
        &mut out,
    )?;
    check_thread_labels("BENCH_montecarlo.json", &mc_entries, &mut out);
    check_speedup_floor(
        "BENCH_montecarlo.json",
        &mc_entries,
        "montecarlo_wide",
        "summary",
        "speedup",
        floor(&baselines, "montecarlo_wide_speedup")?,
        &mut out,
    );
    check_speedup_floor(
        "BENCH_scale.json",
        &scale_entries,
        "montecarlo_wide",
        "sampling",
        "speedup",
        floor(&baselines, "scale_wide_speedup")?,
        &mut out,
    );
    check_speedup_floor(
        "BENCH_incremental.json",
        &incremental_entries,
        "incremental",
        "watch_load",
        "speedup_amortized",
        floor(&baselines, "incremental_speedup")?,
        &mut out,
    );
    check_sampling_regression("BENCH_scale.json", &scale_entries, &baselines, &mut out);
    check_service("BENCH_service.json", &service_entries, &baselines, &mut out)?;

    if update {
        let updated = updated_baselines(&baselines, &scale_entries)?;
        fs::write(&baselines_path, updated.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baselines_path.display()))?;
    }
    Ok(out)
}

/// The baselines document with the current scale workload's sampling
/// entry inserted or replaced. Floors pass through untouched: they are
/// policy, not measurements.
fn updated_baselines(baselines: &Value, scale_entries: &[Metrics<'_>]) -> Result<Value, String> {
    let (nodes, edges, snapshots) = scale_workload(scale_entries)
        .ok_or_else(|| "BENCH_scale.json: missing dataset entries".to_string())?;
    let sampling_ns = find(scale_entries, "dataset", "snapshots")
        .and_then(|m| m.get("sampling_ns"))
        .ok_or_else(|| "BENCH_scale.json: missing sampling_ns".to_string())?;
    let entry = Value::Object(vec![
        ("nodes".into(), Value::Number(nodes)),
        ("edges".into(), Value::Number(edges)),
        ("snapshots".into(), Value::Number(snapshots)),
        ("sampling_ns".into(), Value::Number(sampling_ns)),
    ]);

    let mut sampling: Vec<Value> = baselines
        .get("sampling")
        .and_then(Value::as_array)
        .map(<[Value]>::to_vec)
        .unwrap_or_default();
    match sampling.iter_mut().find(|b| {
        b.get("nodes").and_then(Value::as_f64) == Some(nodes)
            && b.get("edges").and_then(Value::as_f64) == Some(edges)
            && b.get("snapshots").and_then(Value::as_f64) == Some(snapshots)
    }) {
        Some(slot) => *slot = entry,
        None => sampling.push(entry),
    }

    let mut doc: Vec<(String, Value)> = match baselines {
        Value::Object(fields) => fields.clone(),
        _ => return Err("bench_baselines.json: expected a JSON object".to_string()),
    };
    match doc.iter_mut().find(|(k, _)| k == "sampling") {
        Some((_, slot)) => *slot = Value::Array(sampling),
        None => doc.push(("sampling".into(), Value::Array(sampling))),
    }
    Ok(Value::Object(doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(entries_json: &str) -> Value {
        Value::parse(&format!(
            r#"{{"schema":"isomit-bench/1","name":"t","entries":[{entries_json}]}}"#
        ))
        .expect("test artifact parses")
    }

    #[test]
    fn divergent_bit_identical_fails() {
        let doc = artifact(r#"{"group":"mc","id":"summary","metrics":{"bit_identical":0}}"#);
        let mut out = BenchCheckOutcome::default();
        check_bit_identical("a", &metrics_entries(&doc), &mut out);
        assert_eq!(out.failures.len(), 1);
    }

    #[test]
    fn missing_bit_identical_fails() {
        let doc = artifact(r#"{"group":"mc","id":"summary","metrics":{"runs":10}}"#);
        let mut out = BenchCheckOutcome::default();
        check_bit_identical("a", &metrics_entries(&doc), &mut out);
        assert_eq!(out.failures.len(), 1);
    }

    #[test]
    fn one_thread_parallel_speedup_fails() {
        let doc = artifact(
            r#"{"group":"mc","id":"summary","metrics":{"threads":1,"speedup":0.99,"bit_identical":1}}"#,
        );
        let mut out = BenchCheckOutcome::default();
        check_thread_labels("a", &metrics_entries(&doc), &mut out);
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
    }

    #[test]
    fn two_thread_parallel_speedup_passes() {
        let doc = artifact(
            r#"{"group":"mc","id":"summary","metrics":{"threads":2,"speedup":1.8,"bit_identical":1}}"#,
        );
        let mut out = BenchCheckOutcome::default();
        check_thread_labels("a", &metrics_entries(&doc), &mut out);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn speedup_below_floor_fails() {
        let doc =
            artifact(r#"{"group":"montecarlo_wide","id":"summary","metrics":{"speedup":1.2}}"#);
        let mut out = BenchCheckOutcome::default();
        check_speedup_floor(
            "a",
            &metrics_entries(&doc),
            "montecarlo_wide",
            "summary",
            "speedup",
            1.4,
            &mut out,
        );
        assert_eq!(out.failures.len(), 1);
        let mut ok = BenchCheckOutcome::default();
        check_speedup_floor(
            "a",
            &metrics_entries(&doc),
            "montecarlo_wide",
            "summary",
            "speedup",
            1.0,
            &mut ok,
        );
        assert!(ok.failures.is_empty());
    }

    #[test]
    fn incremental_speedup_gates_on_the_amortized_metric() {
        let doc = artifact(
            r#"{"group":"incremental","id":"watch_load","metrics":{"speedup_amortized":8.5,"bit_identical":1}}"#,
        );
        let entries = metrics_entries(&doc);
        let mut out = BenchCheckOutcome::default();
        check_speedup_floor(
            "BENCH_incremental.json",
            &entries,
            "incremental",
            "watch_load",
            "speedup_amortized",
            10.0,
            &mut out,
        );
        assert_eq!(out.failures.len(), 1, "8.5x under a 10x floor must fail");
        let mut ok = BenchCheckOutcome::default();
        check_speedup_floor(
            "BENCH_incremental.json",
            &entries,
            "incremental",
            "watch_load",
            "speedup_amortized",
            8.5,
            &mut ok,
        );
        assert!(ok.failures.is_empty(), "{:?}", ok.failures);
    }

    #[test]
    fn missing_incremental_entry_fails() {
        let doc = artifact(r#"{"group":"incremental","id":"cold_recompute","metrics":{}}"#);
        let mut out = BenchCheckOutcome::default();
        check_speedup_floor(
            "BENCH_incremental.json",
            &metrics_entries(&doc),
            "incremental",
            "watch_load",
            "speedup_amortized",
            10.0,
            &mut out,
        );
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
    }

    #[test]
    fn incremental_floor_survives_baseline_updates() {
        let doc = artifact(
            r#"{"group":"dataset","id":"graph","metrics":{"nodes":10,"edges":20}},
               {"group":"dataset","id":"snapshots","metrics":{"count":1,"sampling_ns":100}}"#,
        );
        let base = Value::parse(r#"{"floors":{"incremental_speedup":10}}"#).expect("parses");
        let updated = updated_baselines(&base, &metrics_entries(&doc)).expect("update succeeds");
        assert_eq!(
            updated
                .get("floors")
                .and_then(|f| f.get("incremental_speedup"))
                .and_then(Value::as_f64),
            Some(10.0),
            "the incremental floor must survive --update-baselines"
        );
    }

    #[test]
    fn sampling_regression_gates_only_matching_workloads() {
        let doc = artifact(
            r#"{"group":"dataset","id":"graph","metrics":{"nodes":100,"edges":500}},
               {"group":"dataset","id":"snapshots","metrics":{"count":2,"sampling_ns":1000}}"#,
        );
        let entries = metrics_entries(&doc);
        let matching = Value::parse(
            r#"{"sampling":[{"nodes":100,"edges":500,"snapshots":2,"sampling_ns":500}]}"#,
        )
        .expect("baseline parses");
        let mut out = BenchCheckOutcome::default();
        check_sampling_regression("a", &entries, &matching, &mut out);
        assert_eq!(out.failures.len(), 1, "2x the baseline must fail");

        let other = Value::parse(
            r#"{"sampling":[{"nodes":999,"edges":500,"snapshots":2,"sampling_ns":500}]}"#,
        )
        .expect("baseline parses");
        let mut out = BenchCheckOutcome::default();
        check_sampling_regression("a", &entries, &other, &mut out);
        assert!(out.failures.is_empty());
        assert_eq!(out.warnings.len(), 1, "unmatched workload warns and skips");
    }

    /// Baselines carrying a floor for every gated detector.
    fn detector_floors(value: f64) -> Value {
        let floors: Vec<String> = GATED_DETECTORS
            .iter()
            .map(|label| format!(r#""detector_f1_{label}":{value}"#))
            .collect();
        Value::parse(&format!(r#"{{"floors":{{{}}}}}"#, floors.join(",")))
            .expect("test baselines parse")
    }

    /// An artifact with every gated detector at the given F1.
    fn detector_artifact(f1: f64) -> Value {
        let entries: Vec<String> = GATED_DETECTORS
            .iter()
            .map(|label| {
                format!(r#"{{"group":"epinions_mfc","id":"{label}","metrics":{{"f1":{f1}}}}}"#)
            })
            .collect();
        artifact(&entries.join(","))
    }

    #[test]
    fn detector_f1_below_floor_fails() {
        let doc = detector_artifact(0.01);
        let mut out = BenchCheckOutcome::default();
        check_detector_f1(
            "a",
            &metrics_entries(&doc),
            &detector_floors(0.02),
            &mut out,
        )
        .expect("floors present");
        assert_eq!(
            out.failures.len(),
            GATED_DETECTORS.len(),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn detector_f1_at_or_above_floor_passes() {
        let doc = detector_artifact(0.02);
        let mut out = BenchCheckOutcome::default();
        check_detector_f1(
            "a",
            &metrics_entries(&doc),
            &detector_floors(0.02),
            &mut out,
        )
        .expect("floors present");
        assert!(out.failures.is_empty(), "{:?}", out.failures);
    }

    #[test]
    fn missing_detector_cell_fails() {
        // Only RID present: the other four gated labels must each fail.
        let doc = artifact(r#"{"group":"epinions_mfc","id":"rid","metrics":{"f1":0.5}}"#);
        let mut out = BenchCheckOutcome::default();
        check_detector_f1(
            "a",
            &metrics_entries(&doc),
            &detector_floors(0.02),
            &mut out,
        )
        .expect("floors present");
        assert_eq!(
            out.failures.len(),
            GATED_DETECTORS.len() - 1,
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn missing_detector_floor_is_a_policy_error() {
        let doc = detector_artifact(0.5);
        let base = Value::parse(r#"{"floors":{}}"#).expect("parses");
        let mut out = BenchCheckOutcome::default();
        let err = check_detector_f1("a", &metrics_entries(&doc), &base, &mut out)
            .expect_err("missing floor must be an error");
        assert!(err.contains("detector_f1_rid"), "{err}");
    }

    #[test]
    fn detector_floors_survive_baseline_updates() {
        let doc = artifact(
            r#"{"group":"dataset","id":"graph","metrics":{"nodes":100,"edges":500}},
               {"group":"dataset","id":"snapshots","metrics":{"count":2,"sampling_ns":1000}}"#,
        );
        let updated = updated_baselines(&detector_floors(0.02), &metrics_entries(&doc))
            .expect("update succeeds");
        for label in GATED_DETECTORS {
            assert_eq!(
                updated
                    .get("floors")
                    .and_then(|f| f.get(&format!("detector_f1_{label}")))
                    .and_then(Value::as_f64),
                Some(0.02),
                "floor for {label} must survive --update-baselines"
            );
        }
    }

    /// Baselines carrying the service throughput floor and tail ceiling.
    fn service_baselines(rps_floor: f64, p99_ceiling: f64) -> Value {
        Value::parse(&format!(
            r#"{{"floors":{{"service_rps":{rps_floor}}},"ceilings":{{"service_hot_p99_ns":{p99_ceiling}}}}}"#
        ))
        .expect("test baselines parse")
    }

    fn service_artifact(rps: f64, p99: f64, wrong: f64) -> Value {
        artifact(&format!(
            r#"{{"group":"service","id":"summary","metrics":{{"service_rps":{rps},"hot_p99_ns":{p99},"wrong_answers":{wrong}}}}}"#
        ))
    }

    #[test]
    fn service_rps_below_floor_fails() {
        let doc = service_artifact(3000.0, 1e7, 0.0);
        let mut out = BenchCheckOutcome::default();
        check_service(
            "a",
            &metrics_entries(&doc),
            &service_baselines(5000.0, 5e7),
            &mut out,
        )
        .expect("policy present");
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);

        let mut ok = BenchCheckOutcome::default();
        check_service(
            "a",
            &metrics_entries(&doc),
            &service_baselines(3000.0, 5e7),
            &mut ok,
        )
        .expect("policy present");
        assert!(ok.failures.is_empty(), "{:?}", ok.failures);
    }

    #[test]
    fn service_p99_above_ceiling_fails() {
        let doc = service_artifact(9000.0, 9e7, 0.0);
        let mut out = BenchCheckOutcome::default();
        check_service(
            "a",
            &metrics_entries(&doc),
            &service_baselines(5000.0, 5e7),
            &mut out,
        )
        .expect("policy present");
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
    }

    #[test]
    fn service_wrong_answers_fail() {
        let doc = service_artifact(9000.0, 1e7, 2.0);
        let mut out = BenchCheckOutcome::default();
        check_service(
            "a",
            &metrics_entries(&doc),
            &service_baselines(5000.0, 5e7),
            &mut out,
        )
        .expect("policy present");
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
    }

    #[test]
    fn missing_service_summary_fails() {
        let doc = artifact(r#"{"group":"hot_storm","id":"c64","metrics":{"rps":9000}}"#);
        let mut out = BenchCheckOutcome::default();
        check_service(
            "a",
            &metrics_entries(&doc),
            &service_baselines(5000.0, 5e7),
            &mut out,
        )
        .expect("policy present");
        assert_eq!(out.failures.len(), 1, "{:?}", out.failures);
    }

    #[test]
    fn missing_service_policy_is_an_error() {
        let doc = service_artifact(9000.0, 1e7, 0.0);
        let base = Value::parse(r#"{"floors":{}}"#).expect("parses");
        let mut out = BenchCheckOutcome::default();
        let err = check_service("a", &metrics_entries(&doc), &base, &mut out)
            .expect_err("missing floor must be a policy error");
        assert!(err.contains("service_rps"), "{err}");
    }

    #[test]
    fn service_floor_and_ceiling_survive_baseline_updates() {
        let doc = artifact(
            r#"{"group":"dataset","id":"graph","metrics":{"nodes":10,"edges":20}},
               {"group":"dataset","id":"snapshots","metrics":{"count":1,"sampling_ns":100}}"#,
        );
        let updated = updated_baselines(&service_baselines(5000.0, 5e7), &metrics_entries(&doc))
            .expect("update succeeds");
        assert_eq!(
            updated
                .get("floors")
                .and_then(|f| f.get("service_rps"))
                .and_then(Value::as_f64),
            Some(5000.0),
            "the service throughput floor must survive --update-baselines"
        );
        assert_eq!(
            updated
                .get("ceilings")
                .and_then(|c| c.get("service_hot_p99_ns"))
                .and_then(Value::as_f64),
            Some(5e7),
            "the service tail-latency ceiling must survive --update-baselines"
        );
    }

    #[test]
    fn update_inserts_and_replaces_workload_entries() {
        let doc = artifact(
            r#"{"group":"dataset","id":"graph","metrics":{"nodes":100,"edges":500}},
               {"group":"dataset","id":"snapshots","metrics":{"count":2,"sampling_ns":1000}}"#,
        );
        let entries = metrics_entries(&doc);
        let base = Value::parse(r#"{"floors":{"scale_wide_speedup":10}}"#).expect("parses");
        let updated = updated_baselines(&base, &entries).expect("update succeeds");
        assert_eq!(
            updated
                .get("sampling")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        // Floors survive the rewrite.
        assert_eq!(
            updated
                .get("floors")
                .and_then(|f| f.get("scale_wide_speedup"))
                .and_then(Value::as_f64),
            Some(10.0)
        );
        // A second update of the same workload replaces, not appends.
        let again = updated_baselines(&updated, &entries).expect("update succeeds");
        assert_eq!(
            again
                .get("sampling")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
    }
}
