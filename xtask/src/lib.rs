//! In-repo developer tooling for the isomit workspace.
//!
//! Two subcommands:
//!
//! * `lint` — a token-level static analysis pass enforcing the
//!   panic-freedom, determinism (lexical + transitive taint),
//!   documentation and unsafe/SAFETY contracts described in DESIGN.md
//!   §13 "Static analysis v2";
//! * `bench-check` — the CI bench-regression gate over the committed
//!   `BENCH_*.json` artifacts and the `bench_baselines.json` policy
//!   file (see [`bench_check`]).
//!
//! ```text
//! cargo run -p xtask -- lint                  # fail on unwaived diagnostics
//! cargo run -p xtask -- lint --report         # additionally write LINT_REPORT.json
//! cargo run -p xtask -- lint --diff-baseline  # also fail on findings new vs the committed report
//! cargo run -p xtask -- bench-check           # gate on the bench artifacts
//! cargo run -p xtask -- bench-check --update-baselines
//! ```
//!
//! The lint pipeline parses each file exactly once ([`scan::ParsedFile`]:
//! lexer → item tree → per-token context → waivers) and every rule —
//! including the cross-file determinism taint analysis — runs over that
//! shared parse.

pub mod bench_check;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod taint;

use std::fs;
use std::path::{Path, PathBuf};

/// Locates the workspace root: the parent of the `xtask` manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .parent()
        .unwrap_or_else(|| Path::new(manifest))
        .to_path_buf()
}

/// Collects every `.rs` file under `crates/*/src` and the root `src/`,
/// sorted by workspace-relative path for deterministic output.
///
/// `xtask` itself is deliberately excluded: it is developer tooling, not
/// library code shipped in the simulation path.
pub fn collect_sources(root: &Path) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = Vec::new();
    let mut roots: Vec<PathBuf> = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            roots.push(entry.path().join("src"));
        }
    }
    for dir in roots {
        walk(&dir, root, &mut files);
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(text) = fs::read_to_string(&path) {
                out.push((rel, text));
            }
        }
    }
}

/// Runs the full lint pass. Returns `(unwaived_diagnostic_count, report_json)`
/// and prints diagnostics to stderr.
pub fn run_lint(root: &Path, quiet: bool) -> (usize, String) {
    let sources = collect_sources(root);
    let files: Vec<scan::ParsedFile> = sources
        .iter()
        .map(|(path, text)| scan::ParsedFile::parse(path, text))
        .collect();
    let outcome = rules::scan_all(&files);
    if !quiet {
        for d in outcome.diagnostics.iter().filter(|d| !d.waived) {
            eprintln!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
        }
    }
    (outcome.unwaived(), report::render(&outcome))
}

/// Compares `report_json` against the committed `LINT_REPORT.json` and
/// returns the findings that are new relative to it.
///
/// # Errors
///
/// Returns an error when the committed report is missing, unreadable, or
/// has a mismatched format version.
pub fn diff_baseline(root: &Path, report_json: &str) -> Result<Vec<String>, String> {
    let path = root.join("LINT_REPORT.json");
    let baseline =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    report::diff_baseline(report_json, &baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_crates() {
        assert!(workspace_root().join("crates").is_dir());
    }

    #[test]
    fn collect_sources_finds_graph_crate_and_skips_xtask() {
        let sources = collect_sources(&workspace_root());
        assert!(sources.iter().any(|(p, _)| p == "crates/graph/src/lib.rs"));
        assert!(sources.iter().all(|(p, _)| !p.starts_with("xtask/")));
        // Sorted and unique.
        let mut paths: Vec<&String> = sources.iter().map(|(p, _)| p).collect();
        let n = paths.len();
        paths.dedup();
        assert_eq!(paths.len(), n);
        assert!(paths.windows(2).all(|w| w[0] < w[1]));
    }
}
