//! Item-level parsing on top of the token stream.
//!
//! This is not a full Rust parser: it recovers the *item tree* — the
//! nesting of modules, impls, traits and functions — plus the facts the
//! rules engine needs about each item:
//!
//! * name, visibility and declaration line;
//! * the attached doc comment text and attributes (so `#[cfg(test)]`
//!   subtrees are exempted structurally, not by brace counting on
//!   blanked lines as the old scanner did);
//! * for functions: the body token range, whether the return type
//!   mentions `Result`, and whether the doc carries `# Panics` /
//!   `# Errors` / `# Examples` sections.
//!
//! Function bodies are treated as opaque token ranges (statements are
//! not parsed); the expression-level rules work directly on the token
//! stream with the item tree supplying context (enclosing function,
//! test scope, method-vs-free-function).
//!
//! Like the lexer, the parser is total: any token stream produces an
//! item tree without panics, and the cursor always advances.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node of the item tree is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn`, `pub fn`, `const fn`, `async fn`, `unsafe fn`, …
    Fn,
    /// `mod name { … }` or `mod name;`
    Mod,
    /// `impl Type { … }` / `impl Trait for Type { … }`
    Impl,
    /// `trait Name { … }`
    Trait,
    /// `struct` / `enum` / `union`
    TypeDef,
    /// `macro_rules! name { … }`
    MacroDef,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name (`impl` items use the rendered header text).
    pub name: String,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line of the declaring keyword.
    pub line: usize,
    /// Index of the enclosing item in the tree, if any.
    pub parent: Option<usize>,
    /// `true` if this item or an ancestor is `#[cfg(test)]` / `#[test]`.
    pub cfg_test: bool,
    /// Concatenated outer doc comment text attached to the item.
    pub doc: String,
    /// Raw text of the item's outer attributes.
    pub attrs: Vec<String>,
    /// Token range `[start, end)` strictly inside the body braces
    /// (`None` for `mod x;`, trait method signatures, type defs, …).
    pub body: Option<(usize, usize)>,
    /// Functions only: the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Functions only: declared inside an `impl` or `trait` block.
    pub is_method: bool,
}

impl Item {
    /// Whether the doc comment has a `# Panics` section.
    pub fn has_panics_doc(&self) -> bool {
        self.doc.contains("# Panics")
    }

    /// Whether the doc comment has an `# Errors` section.
    pub fn has_errors_doc(&self) -> bool {
        self.doc.contains("# Errors")
    }

    /// Whether the doc comment has an `# Examples` section.
    pub fn has_examples_doc(&self) -> bool {
        self.doc.contains("# Examples")
    }
}

/// Parses the item tree out of a lexed file.
pub fn parse(src: &str, tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser {
        src,
        tokens,
        pos: 0,
        items: Vec::new(),
    };
    p.parse_block(None, false, false);
    p.items
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    pos: usize,
    items: Vec<Item>,
}

/// Pending doc/attr state while scanning toward the next item keyword.
#[derive(Default)]
struct Pending {
    docs: Vec<String>,
    attrs: Vec<String>,
    is_pub: bool,
}

impl Pending {
    fn take_doc(&mut self) -> String {
        let doc = self.docs.join("\n");
        self.docs.clear();
        doc
    }

    fn cfg_test(&self) -> bool {
        self.attrs.iter().any(|a| {
            let squashed: String = a.chars().filter(|c| !c.is_whitespace()).collect();
            squashed.contains("cfg(test)") || squashed == "#[test]"
        })
    }

    fn reset(&mut self) {
        self.docs.clear();
        self.attrs.clear();
        self.is_pub = false;
    }
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&Token> {
        self.tokens.get(self.pos + ahead)
    }

    fn text(&self, t: &Token) -> &'a str {
        t.text(self.src)
    }

    /// Next non-comment token index at or after `self.pos + ahead`
    /// positions among significant tokens.
    fn sig(&self, nth: usize) -> Option<usize> {
        let mut seen = 0usize;
        let mut i = self.pos;
        while let Some(t) = self.tokens.get(i) {
            if !t.is_comment() {
                if seen == nth {
                    return Some(i);
                }
                seen += 1;
            }
            i += 1;
        }
        None
    }

    fn sig_text(&self, nth: usize) -> &'a str {
        self.sig(nth)
            .and_then(|i| self.tokens.get(i))
            .map(|t| self.text(t))
            .unwrap_or("")
    }

    /// Parses items until a closing `}` (consumed) or end of input.
    fn parse_block(&mut self, parent: Option<usize>, in_test: bool, in_impl: bool) {
        let mut pending = Pending::default();
        while let Some(tok) = self.peek(0).copied() {
            match tok.kind {
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => {
                    if doc {
                        let text = self.text(&tok);
                        // Inner docs (`//!`, `/*!`) describe the enclosing
                        // module, not the next item.
                        if !text.starts_with("//!") && !text.starts_with("/*!") {
                            pending.docs.push(strip_doc_markers(text));
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    let text = self.text(&tok);
                    match text {
                        "#" => self.attribute(&mut pending),
                        "pub" => {
                            self.pos += 1;
                            // `pub(crate)` / `pub(in path)` is restricted
                            // visibility — not part of the public API
                            // surface the doc and taint rules guard.
                            if self.sig_text(0) == "(" {
                                self.skip_balanced("(", ")");
                            } else {
                                pending.is_pub = true;
                            }
                        }
                        // Modifier keywords that may precede `fn`.
                        "const" | "unsafe" | "async" | "extern" | "default" => {
                            if self.is_fn_modifier() {
                                self.pos += 1;
                            } else {
                                // `const NAME: T = …;`, `extern crate`,
                                // `unsafe impl`… — `unsafe impl` and
                                // `unsafe trait` are handled by skipping
                                // the keyword; other forms run to `;`.
                                if text == "unsafe" && matches!(self.sig_text(1), "impl" | "trait")
                                {
                                    self.pos += 1;
                                } else {
                                    self.skip_to_semicolon();
                                    pending.reset();
                                }
                            }
                        }
                        "fn" => self.function(&mut pending, parent, in_test, in_impl),
                        "mod" => self.module(&mut pending, parent, in_test),
                        "impl" => self.impl_or_trait(ItemKind::Impl, &mut pending, parent, in_test),
                        "trait" => {
                            self.impl_or_trait(ItemKind::Trait, &mut pending, parent, in_test)
                        }
                        "struct" | "enum" | "union" => self.type_def(&mut pending, parent, in_test),
                        "macro_rules" => self.macro_def(&mut pending, parent, in_test),
                        "use" | "static" | "type" => {
                            self.skip_to_semicolon();
                            pending.reset();
                        }
                        "}" => {
                            self.pos += 1;
                            return;
                        }
                        "{" => {
                            // Stray block (e.g. malformed input): skip it
                            // wholesale so we never mistake its contents
                            // for items of this level.
                            self.skip_balanced("{", "}");
                            pending.reset();
                        }
                        _ => {
                            self.pos += 1;
                            pending.reset();
                        }
                    }
                }
            }
        }
    }

    /// True if the keyword at the cursor is a modifier chain leading to
    /// `fn` (e.g. `const unsafe extern "C" fn`).
    fn is_fn_modifier(&self) -> bool {
        for ahead in 1..5 {
            match self.sig_text(ahead) {
                "fn" => return true,
                "const" | "unsafe" | "async" | "default" | "extern" => continue,
                s if s.starts_with('"') => continue, // extern ABI string
                _ => return false,
            }
        }
        false
    }

    /// Consumes `#[...]` / `#![...]`, recording outer attributes.
    fn attribute(&mut self, pending: &mut Pending) {
        let start_tok = self.pos;
        self.pos += 1; // `#`
        let inner = self.sig_text(0) == "!";
        if inner {
            self.pos += 1;
        }
        if self.sig_text(0) == "[" {
            let end = self.skip_balanced("[", "]");
            if !inner {
                let from = self.tokens.get(start_tok).map(|t| t.start).unwrap_or(0);
                let to = end.unwrap_or(from);
                pending
                    .attrs
                    .push(self.src.get(from..to).unwrap_or("").to_owned());
            }
        }
    }

    /// Skips a balanced pair starting at the next significant `open`.
    /// Returns the byte offset just past the closing token.
    fn skip_balanced(&mut self, open: &str, close: &str) -> Option<usize> {
        // Advance to the opening token.
        while let Some(t) = self.peek(0).copied() {
            if t.is_comment() {
                self.pos += 1;
                continue;
            }
            if self.text(&t) == open {
                break;
            }
            self.pos += 1;
        }
        let mut depth = 0usize;
        while let Some(t) = self.peek(0).copied() {
            self.pos += 1;
            if t.is_comment() {
                continue;
            }
            let text = self.text(&t);
            if text == open {
                depth += 1;
            } else if text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(t.end);
                }
            }
        }
        None
    }

    /// Skips to just past the next `;` at brace/paren depth 0.
    fn skip_to_semicolon(&mut self) {
        let mut brace = 0i64;
        let mut paren = 0i64;
        while let Some(t) = self.peek(0).copied() {
            self.pos += 1;
            if t.is_comment() {
                continue;
            }
            match self.text(&t) {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace < 0 {
                        // Closing the enclosing block: back off so the
                        // caller sees it.
                        self.pos -= 1;
                        return;
                    }
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                ";" if brace == 0 && paren <= 0 => return,
                _ => {}
            }
        }
    }

    fn function(
        &mut self,
        pending: &mut Pending,
        parent: Option<usize>,
        in_test: bool,
        in_impl: bool,
    ) {
        let line = self.peek(0).map(|t| t.line).unwrap_or(0);
        self.pos += 1; // `fn`
        let name = self.sig_text(0).to_owned();
        if let Some(i) = self.sig(0) {
            self.pos = i + 1;
        }
        // Signature runs to the body `{` or a `;` (trait method without
        // default body). Track nesting so `where` clauses and argument
        // lists never end the signature early; collect the return type
        // tokens after `->`.
        let mut returns_result = false;
        let mut after_arrow = false;
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut body: Option<(usize, usize)> = None;
        while let Some(t) = self.peek(0).copied() {
            if t.is_comment() {
                self.pos += 1;
                continue;
            }
            let text = self.text(&t);
            match text {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "->" => after_arrow = true,
                "Result" if after_arrow => returns_result = true,
                ";" if paren <= 0 && bracket <= 0 => {
                    self.pos += 1;
                    break;
                }
                "{" if paren <= 0 && bracket <= 0 => {
                    let body_start = self.pos + 1;
                    self.skip_balanced("{", "}");
                    // An unterminated body runs to EOF; the clamp keeps
                    // the range well-formed when the `{` is the last token.
                    body = Some((body_start, self.pos.saturating_sub(1).max(body_start)));
                    break;
                }
                _ => {}
            }
            self.pos += 1;
        }
        let cfg_test = in_test || pending.cfg_test();
        self.items.push(Item {
            kind: ItemKind::Fn,
            name,
            is_pub: pending.is_pub,
            line,
            parent,
            cfg_test,
            doc: pending.take_doc(),
            attrs: std::mem::take(&mut pending.attrs),
            body,
            returns_result,
            is_method: in_impl,
        });
        pending.reset();
    }

    fn module(&mut self, pending: &mut Pending, parent: Option<usize>, in_test: bool) {
        let line = self.peek(0).map(|t| t.line).unwrap_or(0);
        self.pos += 1; // `mod`
        let name = self.sig_text(0).to_owned();
        if let Some(i) = self.sig(0) {
            self.pos = i + 1;
        }
        let cfg_test = in_test || pending.cfg_test();
        let idx = self.items.len();
        self.items.push(Item {
            kind: ItemKind::Mod,
            name,
            is_pub: pending.is_pub,
            line,
            parent,
            cfg_test,
            doc: pending.take_doc(),
            attrs: std::mem::take(&mut pending.attrs),
            body: None,
            returns_result: false,
            is_method: false,
        });
        pending.reset();
        match self.sig_text(0) {
            "{" => {
                if let Some(i) = self.sig(0) {
                    self.pos = i + 1;
                }
                let body_start = self.pos;
                self.parse_block(Some(idx), cfg_test, false);
                self.items[idx].body =
                    Some((body_start, self.pos.saturating_sub(1).max(body_start)));
            }
            ";" => {
                if let Some(i) = self.sig(0) {
                    self.pos = i + 1;
                }
            }
            _ => {}
        }
    }

    fn impl_or_trait(
        &mut self,
        kind: ItemKind,
        pending: &mut Pending,
        parent: Option<usize>,
        in_test: bool,
    ) {
        let line = self.peek(0).map(|t| t.line).unwrap_or(0);
        let header_start = self.peek(0).map(|t| t.start).unwrap_or(0);
        self.pos += 1; // `impl` / `trait`
                       // Scan forward to the body `{` (or `;` for `trait Alias = …;`).
        let mut header_end = header_start;
        while let Some(t) = self.peek(0).copied() {
            if t.is_comment() {
                self.pos += 1;
                continue;
            }
            let text = self.text(&t);
            if text == "{" || text == ";" {
                break;
            }
            header_end = t.end;
            self.pos += 1;
        }
        let name = self
            .src
            .get(header_start..header_end)
            .unwrap_or("")
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        let cfg_test = in_test || pending.cfg_test();
        let idx = self.items.len();
        self.items.push(Item {
            kind,
            name,
            is_pub: pending.is_pub,
            line,
            parent,
            cfg_test,
            doc: pending.take_doc(),
            attrs: std::mem::take(&mut pending.attrs),
            body: None,
            returns_result: false,
            is_method: false,
        });
        pending.reset();
        if self.sig_text(0) == "{" {
            if let Some(i) = self.sig(0) {
                self.pos = i + 1;
            }
            let body_start = self.pos;
            self.parse_block(Some(idx), cfg_test, true);
            self.items[idx].body = Some((body_start, self.pos.saturating_sub(1).max(body_start)));
        } else if self.sig_text(0) == ";" {
            if let Some(i) = self.sig(0) {
                self.pos = i + 1;
            }
        }
    }

    fn type_def(&mut self, pending: &mut Pending, parent: Option<usize>, in_test: bool) {
        let line = self.peek(0).map(|t| t.line).unwrap_or(0);
        self.pos += 1; // struct/enum/union
        let name = self.sig_text(0).to_owned();
        let cfg_test = in_test || pending.cfg_test();
        self.items.push(Item {
            kind: ItemKind::TypeDef,
            name,
            is_pub: pending.is_pub,
            line,
            parent,
            cfg_test,
            doc: pending.take_doc(),
            attrs: std::mem::take(&mut pending.attrs),
            body: None,
            returns_result: false,
            is_method: false,
        });
        pending.reset();
        // Runs to `{…}` (struct/enum body) or `;` (tuple/unit struct).
        loop {
            match self.sig_text(0) {
                "{" => {
                    self.skip_balanced("{", "}");
                    return;
                }
                ";" => {
                    if let Some(i) = self.sig(0) {
                        self.pos = i + 1;
                    }
                    return;
                }
                "" => return,
                _ => {
                    if let Some(i) = self.sig(0) {
                        self.pos = i + 1;
                    } else {
                        return;
                    }
                }
            }
        }
    }

    fn macro_def(&mut self, pending: &mut Pending, parent: Option<usize>, in_test: bool) {
        let line = self.peek(0).map(|t| t.line).unwrap_or(0);
        self.pos += 1; // `macro_rules`
        if self.sig_text(0) == "!" {
            if let Some(i) = self.sig(0) {
                self.pos = i + 1;
            }
        }
        let name = self.sig_text(0).to_owned();
        if let Some(i) = self.sig(0) {
            self.pos = i + 1;
        }
        let body_start = self.pos + 1;
        self.skip_balanced("{", "}");
        self.items.push(Item {
            kind: ItemKind::MacroDef,
            name,
            is_pub: pending.is_pub,
            line,
            parent,
            cfg_test: in_test || pending.cfg_test(),
            doc: pending.take_doc(),
            attrs: std::mem::take(&mut pending.attrs),
            body: Some((body_start, self.pos.saturating_sub(1).max(body_start))),
            returns_result: false,
            is_method: false,
        });
        pending.reset();
    }
}

/// Strips `///`, `//!`, `/** */` markers from one doc comment's text.
fn strip_doc_markers(text: &str) -> String {
    let t = text.trim();
    if let Some(rest) = t.strip_prefix("///").or_else(|| t.strip_prefix("//!")) {
        return rest.trim().to_owned();
    }
    let t = t
        .strip_prefix("/**")
        .or_else(|| t.strip_prefix("/*!"))
        .unwrap_or(t);
    t.strip_suffix("*/").unwrap_or(t).trim().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<Item> {
        parse(src, &lex(src))
    }

    #[test]
    fn finds_fns_mods_impls() {
        let src = "pub fn free() {}\nmod m {\n  impl Foo {\n    pub fn method(&self) {}\n  }\n}\n";
        let it = items(src);
        let names: Vec<(&str, ItemKind, bool)> = it
            .iter()
            .map(|i| (i.name.as_str(), i.kind, i.is_method))
            .collect();
        assert_eq!(names[0], ("free", ItemKind::Fn, false));
        assert_eq!(names[1], ("m", ItemKind::Mod, false));
        assert_eq!(it[2].kind, ItemKind::Impl);
        assert_eq!(names[3], ("method", ItemKind::Fn, true));
        assert_eq!(it[3].parent, Some(2));
        assert!(it[3].is_pub);
    }

    #[test]
    fn cfg_test_subtree_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n  mod inner { fn u() {} }\n}\nfn tail() {}\n";
        let it = items(src);
        let flag = |name: &str| it.iter().find(|i| i.name == name).map(|i| i.cfg_test);
        assert_eq!(flag("lib"), Some(false));
        assert_eq!(flag("tests"), Some(true));
        assert_eq!(flag("t"), Some(true));
        assert_eq!(flag("u"), Some(true));
        assert_eq!(flag("tail"), Some(false));
    }

    #[test]
    fn doc_sections_are_detected() {
        let src = "/// Doc.\n///\n/// # Panics\n///\n/// Panics on x.\npub fn p() {}\n\n/// # Errors\npub fn e() -> Result<(), E> { Ok(()) }\n";
        let it = items(src);
        assert!(it[0].has_panics_doc());
        assert!(!it[0].has_errors_doc());
        assert!(it[1].has_errors_doc());
        assert!(it[1].returns_result);
        assert!(!it[0].returns_result);
    }

    #[test]
    fn inner_docs_do_not_attach_to_first_item() {
        let src = "//! Module docs.\n\npub fn first() {}\n";
        let it = items(src);
        assert_eq!(it[0].doc, "");
    }

    #[test]
    fn signature_nesting_does_not_end_early() {
        let src = "pub fn f<T: Fn(u8) -> Result<u8, E>>(x: [u8; 3]) -> bool { true }\n";
        let it = items(src);
        assert_eq!(it.len(), 1);
        // `Result` only appears inside a generic bound's parens-arrow,
        // which still counts as after an arrow — acceptable
        // over-approximation; what matters is the body is found.
        assert!(it[0].body.is_some());
    }

    #[test]
    fn trait_methods_without_bodies() {
        let src = "pub trait T {\n  fn sig_only(&self) -> Result<(), E>;\n  fn with_default(&self) {}\n}\n";
        let it = items(src);
        assert_eq!(it[0].kind, ItemKind::Trait);
        let sig = it.iter().find(|i| i.name == "sig_only").unwrap();
        assert!(sig.body.is_none());
        assert!(sig.returns_result);
        assert!(sig.is_method);
        assert!(it
            .iter()
            .find(|i| i.name == "with_default")
            .unwrap()
            .body
            .is_some());
    }

    #[test]
    fn fn_bodies_are_opaque_and_braces_in_literals_ignored() {
        let src = "fn f() { let s = \"}\"; let c = '}'; if x { y() } }\npub fn after() {}\n";
        let it = items(src);
        assert_eq!(it.len(), 2);
        assert_eq!(it[1].name, "after");
    }

    #[test]
    fn macro_rules_is_an_item_with_body() {
        let src = "macro_rules! m {\n  ($x:expr) => { $x[0].unwrap() };\n}\nfn after() {}\n";
        let it = items(src);
        assert_eq!(it[0].kind, ItemKind::MacroDef);
        assert_eq!(it[0].name, "m");
        assert!(it[0].body.is_some());
        assert_eq!(it[1].name, "after");
    }

    #[test]
    fn const_static_and_use_are_skipped_without_confusion() {
        let src = "use std::collections::BTreeMap;\nconst N: usize = 3;\nstatic S: &str = \"fn not_an_item() {}\";\npub const fn cf() -> u8 { 0 }\n";
        let it = items(src);
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].name, "cf");
        assert!(it[0].is_pub);
    }

    #[test]
    fn pub_crate_visibility_is_not_public() {
        let src = "pub(crate) fn f() {}\npub(in crate::x) fn g() {}\npub fn h() {}\n";
        let it = items(src);
        assert_eq!(it.len(), 3);
        assert!(!it[0].is_pub);
        assert!(!it[1].is_pub);
        assert!(it[2].is_pub);
    }

    #[test]
    fn attrs_recorded_and_test_attr_counts() {
        let src = "#[test]\nfn t() {}\n#[inline]\n#[must_use]\npub fn f() -> u8 { 0 }\n";
        let it = items(src);
        assert!(it[0].cfg_test);
        assert_eq!(it[1].attrs.len(), 2);
        assert!(!it[1].cfg_test);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for src in [
            "}}}}",
            "fn",
            "fn {",
            "impl",
            "mod m { fn broken( }",
            "pub pub pub",
            "#[",
            "trait T",
        ] {
            let _ = items(src); // must not panic or hang
        }
    }
}
