//! Property-based tests for the lint engine's front end: the lexer and
//! item parser must be *total* (never panic, never hang) and
//! span-faithful on arbitrary input — linting is run on every source
//! file in the tree, including ones mid-edit.

use proptest::prelude::*;
use xtask::items;
use xtask::lexer;
use xtask::rules::scan_all;
use xtask::scan::ParsedFile;

/// Arbitrary (possibly non-UTF-8-originated) strings: random bytes run
/// through lossy decoding, so the result mixes ASCII, control chars and
/// replacement characters.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..64)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Fragments that exercise the lexer's tricky paths, glued together in
/// random order: unterminated raw strings, nested comments, lifetimes,
/// multibyte text, attribute and waiver syntax.
const FRAGMENTS: [&str; 20] = [
    "fn f() {",
    "}",
    "r#\"raw\"#",
    "r##\"",
    "/* nested /* open",
    "*/",
    "'c'",
    "'lifetime",
    "\"str with \\\" escape",
    "b'\\x7f'",
    "1_000.5e-3",
    "0xfe_u32",
    "#[cfg(test)]",
    "mod m {",
    "pub fn g() -> Result<(), E>",
    "// lint:allow(panic)",
    "macro_rules! m { () => {} }",
    "日本語±",
    "x.unwrap()[0]",
    "impl T for S {",
];

fn rustish() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..FRAGMENTS.len(), 0..24).prop_map(|picks| {
        picks
            .into_iter()
            .filter_map(|i| FRAGMENTS.get(i).copied())
            .collect::<Vec<&str>>()
            .join(" ")
    })
}

proptest! {
    #[test]
    fn lexing_never_panics_and_spans_round_trip(src in arb_string()) {
        let tokens = lexer::lex(&src);
        let mut pos = 0usize;
        for t in &tokens {
            // Spans are ordered, non-overlapping, in-bounds, non-empty.
            prop_assert!(t.start >= pos, "overlap at {}", t.start);
            prop_assert!(t.end > t.start);
            prop_assert!(t.end <= src.len());
            // Spans sit on char boundaries: text() must not panic.
            let _ = t.text(&src);
            // Gaps between tokens are whitespace only.
            prop_assert!(src
                .get(pos..t.start)
                .is_some_and(|gap| gap.chars().all(char::is_whitespace)));
            pos = t.end;
        }
        // Trailing gap is whitespace only: every non-whitespace char is
        // covered by exactly one token.
        prop_assert!(src
            .get(pos..)
            .is_some_and(|gap| gap.chars().all(char::is_whitespace)));
    }

    #[test]
    fn lexing_rustish_never_panics(src in rustish()) {
        let tokens = lexer::lex(&src);
        // Line numbers are monotonic.
        prop_assert!(tokens.windows(2).all(|w| w[0].line <= w[1].line));
    }

    #[test]
    fn item_parsing_is_total(src in rustish()) {
        let tokens = lexer::lex(&src);
        let items = items::parse(&src, &tokens);
        for item in &items {
            if let Some((lo, hi)) = item.body {
                prop_assert!(lo <= hi);
                prop_assert!(hi <= tokens.len());
            }
        }
    }

    #[test]
    fn full_pipeline_is_total_on_arbitrary_input(src in arb_string()) {
        // Lint an arbitrary byte string as if it were a source file in
        // the strictest crate: must terminate without panicking.
        let f = ParsedFile::parse("crates/graph/src/fuzz.rs", &src);
        let outcome = scan_all(&[f]);
        prop_assert!(outcome.diagnostics.iter().all(|d| d.line >= 1));
    }

    #[test]
    fn report_renders_and_reparses_for_any_input(src in rustish()) {
        let f = ParsedFile::parse("crates/core/src/fuzz.rs", &src);
        let outcome = scan_all(&[f]);
        let json = xtask::report::render(&outcome);
        // The self-rendered report must satisfy its own schema.
        let diff = xtask::report::diff_baseline(&json, &json).expect("self-diff parses");
        prop_assert!(diff.is_empty());
    }
}
