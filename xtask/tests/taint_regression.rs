//! Seeded regression tests for the determinism taint analysis: inject
//! nondeterministic constructs into synthetic files of the deterministic
//! crates and prove the lint *catches* them — the static counterpart of
//! the dynamic determinism matrix.

use xtask::rules::{scan_all, Diagnostic, LintOutcome};
use xtask::scan::ParsedFile;

fn lint(files: &[(&str, &str)]) -> LintOutcome {
    let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
    scan_all(&parsed)
}

fn taint_findings(outcome: &LintOutcome) -> Vec<&Diagnostic> {
    outcome
        .diagnostics
        .iter()
        .filter(|d| d.rule == "determinism-taint" && !d.waived)
        .collect()
}

#[test]
fn injected_hashmap_iteration_is_caught_through_a_helper_chain() {
    // A HashMap sneaks into a private helper three calls below the
    // public API of a deterministic crate.
    let outcome = lint(&[
        (
            "crates/diffusion/src/api.rs",
            "pub fn estimate_probabilities(n: usize) -> Vec<f64> {\n    collect_counts(n)\n}\n",
        ),
        (
            "crates/diffusion/src/counts.rs",
            "pub(crate) fn collect_counts(n: usize) -> Vec<f64> {\n    tally(n)\n}\n\nfn tally(n: usize) -> Vec<f64> {\n    use std::collections::HashMap;\n    let mut m: HashMap<usize, f64> = HashMap::new();\n    m.insert(n, 1.0);\n    m.values().copied().collect()\n}\n",
        ),
    ]);
    let findings = taint_findings(&outcome);
    assert_eq!(findings.len(), 1, "{:#?}", outcome.diagnostics);
    let f = findings[0];
    assert_eq!(f.path, "crates/diffusion/src/api.rs");
    assert!(f.message.contains("estimate_probabilities"));
    // The taint path walks the whole chain down to the source.
    assert!(f.taint_path.iter().any(|h| h.contains("collect_counts")));
    assert!(f.taint_path.iter().any(|h| h.contains("tally")));
    assert!(f.taint_path.iter().any(|h| h.contains("HashMap")));
}

#[test]
fn injected_instant_now_in_a_deterministic_crate_is_caught() {
    let outcome = lint(&[(
        "crates/forest/src/extract.rs",
        "use std::time::Instant;\n\npub fn extract_forest() -> u64 {\n    let t0 = Instant::now();\n    t0.elapsed().as_nanos() as u64\n}\n",
    )]);
    // Both the lexical rule and the taint rule fire.
    assert!(taint_findings(&outcome).len() == 1);
    assert!(outcome
        .diagnostics
        .iter()
        .any(|d| d.rule == "determinism" && !d.waived));
    // And the cast-truncation injection above stays out of the way: the
    // `as u64` widening cast is not a finding.
    assert!(outcome
        .diagnostics
        .iter()
        .all(|d| d.rule != "cast-truncation"));
}

#[test]
fn same_injection_outside_taint_crates_is_not_a_taint_finding() {
    let outcome = lint(&[(
        "crates/bench/src/timing.rs",
        "use std::time::Instant;\npub fn measure() -> u128 { Instant::now().elapsed().as_nanos() }\n",
    )]);
    assert!(taint_findings(&outcome).is_empty());
}

#[test]
fn waived_source_cuts_the_taint_chain() {
    let outcome = lint(&[(
        "crates/core/src/lookup.rs",
        "pub fn lookup(n: usize) -> usize {\n    // lint:allow(determinism) membership-only set; iteration order never observed\n    let m = std::collections::HashSet::<usize>::new();\n    m.len() + n\n}\n",
    )]);
    assert!(taint_findings(&outcome).is_empty());
    // The lexical finding exists but is waived — and the waiver is live,
    // not dead.
    assert!(outcome
        .diagnostics
        .iter()
        .any(|d| d.rule == "determinism" && d.waived));
    assert_eq!(outcome.dead_waivers, 0);
}

#[test]
fn current_tree_has_zero_unwaived_taint_findings() {
    let root = xtask::workspace_root();
    let sources = xtask::collect_sources(&root);
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(p, t)| ParsedFile::parse(p, t))
        .collect();
    let outcome = scan_all(&parsed);
    let findings = taint_findings(&outcome);
    assert!(
        findings.is_empty(),
        "determinism taint regressions: {findings:#?}"
    );
}

#[test]
fn injecting_into_the_real_tree_is_caught() {
    // Take the real workspace sources and append one tainted helper to a
    // deterministic crate: the analysis must flag the pub fn that calls
    // it, proving the gate works against the production call graph.
    let root = xtask::workspace_root();
    let mut sources = xtask::collect_sources(&root);
    sources.push((
        "crates/graph/src/injected.rs".to_owned(),
        "pub fn poisoned_degree() -> usize {\n    hidden()\n}\n\nfn hidden() -> usize {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    m.len()\n}\n"
            .to_owned(),
    ));
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(p, t)| ParsedFile::parse(p, t))
        .collect();
    let outcome = scan_all(&parsed);
    let findings = taint_findings(&outcome);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("poisoned_degree"));
}
