//! Golden-corpus tests for the lint engine: hand-picked Rust constructs
//! that defeat line-oriented scanners, pushed through the full pipeline
//! (lexer → item tree → rules) with exact expectations.

use xtask::lexer::{self, TokenKind};
use xtask::rules::{scan_all, Diagnostic};
use xtask::scan::ParsedFile;

fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
    scan_all(&[ParsedFile::parse(path, src)]).diagnostics
}

fn unwaived_rules(path: &str, src: &str) -> Vec<&'static str> {
    diags(path, src)
        .into_iter()
        .filter(|d| !d.waived)
        .map(|d| d.rule)
        .collect()
}

#[test]
fn raw_strings_hide_their_contents_from_rules() {
    let src = r####"
fn f() -> String {
    let a = r"x.unwrap() HashMap";
    let b = r#"v[0] panic!("no")"#;
    let c = r##"nested "#quote"# unsafe"##;
    format!("{a}{b}{c}")
}
"####;
    assert!(unwaived_rules("crates/graph/src/a.rs", src).is_empty());
}

#[test]
fn raw_string_followed_by_indexing_is_still_caught() {
    let src = "fn f() -> u8 { r#\"abc\"#.as_bytes()[0] }\n";
    assert_eq!(unwaived_rules("crates/graph/src/a.rs", src), ["indexing"]);
}

#[test]
fn nested_block_comments_do_not_leak_code() {
    let src = "/* outer /* inner x.unwrap() */ still comment v[0] */\nfn f() {}\n";
    assert!(unwaived_rules("crates/graph/src/a.rs", src).is_empty());
    let tokens = lexer::lex(src);
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::BlockComment { doc: false })
            .count(),
        1
    );
}

#[test]
fn unterminated_block_comment_swallows_the_rest() {
    let src = "/* unterminated\nfn f() { x.unwrap(); }\n";
    assert!(unwaived_rules("crates/graph/src/a.rs", src).is_empty());
}

#[test]
fn char_literals_with_braces_and_brackets_do_not_confuse_nesting() {
    let src = "fn f(c: char) -> bool {\n    matches!(c, '{' | '}' | '[' | ']' | '(' | ')')\n}\npub fn g() { h(); }\nfn h() {}\n";
    // If '{' were treated as an open brace, item parsing would derail and
    // `g`/`h` would vanish from the item tree.
    let f = ParsedFile::parse("crates/graph/src/a.rs", src);
    let names: Vec<&str> = f.items.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, ["f", "g", "h"]);
    assert!(unwaived_rules("crates/service/src/a.rs", src).is_empty());
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nstruct S<'b> { r: &'b [u8] }\n";
    let tokens = lexer::lex(src);
    assert!(tokens.iter().all(|t| t.kind != TokenKind::Char));
    assert_eq!(
        tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count(),
        5
    );
}

#[test]
fn cfg_test_modules_are_exempt_end_to_end() {
    let src = "fn lib(v: &[u8]) -> Option<&u8> { v.get(0) }\n\n#[cfg(test)]\nmod tests {\n    use super::*;\n\n    #[test]\n    fn t() {\n        let v = vec![1u8];\n        assert_eq!(v[0], *lib(&v).unwrap());\n        let m = std::collections::HashMap::<u32, u32>::new();\n        let _ = m;\n    }\n}\n";
    // unwrap + indexing + HashMap inside #[cfg(test)]: all exempt, even
    // in a deterministic crate.
    assert!(unwaived_rules("crates/diffusion/src/a.rs", src).is_empty());
}

#[test]
fn macro_bodies_are_scanned_for_expressions() {
    // Token rules still see macro invocation bodies — a real unwrap in a
    // macro argument is a real unwrap.
    let src = "fn f() {\n    println!(\"{}\", x.unwrap());\n}\n";
    assert_eq!(unwaived_rules("crates/graph/src/a.rs", src), ["panic"]);
}

#[test]
fn doc_comments_and_doctests_are_not_code() {
    let src = "/// Scores nodes.\n///\n/// ```\n/// let v = vec![1];\n/// assert_eq!(v[0], scores().unwrap()[0]);\n/// ```\n///\n/// # Examples\n///\n/// ```\n/// ```\npub fn scores() -> Vec<u8> { Vec::new() }\n";
    assert!(unwaived_rules("crates/graph/src/a.rs", src).is_empty());
}

#[test]
fn waiver_inside_string_literal_is_inert() {
    let src = "fn f() -> &'static str { \"// lint:allow(panic) not a waiver\" }\nfn g() { x.unwrap(); }\n";
    let all = diags("crates/graph/src/a.rs", src);
    // The panic finding in g() must NOT be waived by the string content.
    assert!(all.iter().any(|d| d.rule == "panic" && !d.waived));
    assert!(all.iter().all(|d| d.rule != "dead-waiver"));
}

#[test]
fn multiline_strings_keep_line_numbers_honest() {
    let src = "fn f() -> &'static str {\n    \"line2\nline3\nline4\"\n}\nfn g() { x.unwrap(); }\n";
    let all = diags("crates/graph/src/a.rs", src);
    let panic = all
        .iter()
        .find(|d| d.rule == "panic")
        .expect("panic finding");
    assert_eq!(panic.line, 6);
}

#[test]
fn impl_methods_are_attributed_to_their_fn() {
    let src = "struct S;\nimpl S {\n    /// Doc.\n    ///\n    /// # Panics\n    ///\n    /// Panics when empty.\n    pub fn head(&self, v: &[u8]) -> u8 { v[0] }\n    pub fn tail(&self, v: &[u8]) -> u8 { v[1] }\n}\n";
    let all: Vec<Diagnostic> = diags("crates/service/src/a.rs", src)
        .into_iter()
        .filter(|d| !d.waived)
        .collect();
    // head is # Panics-documented → exempt; tail is not → flagged.
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].rule, "indexing");
    assert_eq!(all[0].line, 9);
}

#[test]
fn the_workspace_itself_lints_clean() {
    // The committed tree must satisfy its own rules: zero unwaived
    // findings, zero dead waivers, waiver debt under budget.
    let root = xtask::workspace_root();
    let sources = xtask::collect_sources(&root);
    let files: Vec<ParsedFile> = sources
        .iter()
        .map(|(p, t)| ParsedFile::parse(p, t))
        .collect();
    let outcome = scan_all(&files);
    let unwaived: Vec<String> = outcome
        .diagnostics
        .iter()
        .filter(|d| !d.waived)
        .map(|d| format!("{}:{} [{}]", d.path, d.line, d.rule))
        .collect();
    assert!(unwaived.is_empty(), "unwaived findings: {unwaived:#?}");
    assert_eq!(outcome.dead_waivers, 0);
    assert!(
        outcome.waiver_total < 50,
        "waiver debt regressed: {} >= 50",
        outcome.waiver_total
    );
}
