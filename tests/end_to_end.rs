//! Cross-crate integration tests: the full simulate → snapshot → detect
//! pipeline on synthetic networks.

use isomit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64, scale: f64, n: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(scale, &mut rng);
    build_scenario(
        &social,
        &ScenarioConfig::default().with_initiators(n),
        &mut rng,
    )
}

#[test]
fn every_planted_seed_is_infected_and_mapped() {
    let sc = scenario(1, 0.01, 20);
    for (node, sign) in sc.ground_truth.iter() {
        assert!(sc.cascade.state(node).is_active());
        let sub = sc
            .snapshot
            .mapping()
            .to_subgraph(node)
            .expect("seed in snapshot");
        // Seeds keep an opinion; it may have been flipped, so only check
        // activity, and check the original seed sign is a valid sign.
        assert!(sc.snapshot.state(sub).is_active());
        let _ = sign;
    }
}

#[test]
fn rid_tree_has_perfect_precision_on_simulated_outbreaks() {
    for seed in 0..5 {
        let sc = scenario(seed, 0.01, 15);
        let detection = RidTree::new(3.0).unwrap().detect(&sc.snapshot);
        let truth: Vec<NodeId> = sc.ground_truth.nodes().collect();
        let prf = evaluate_identities(&detection.nodes(), &truth);
        assert!(
            detection.is_empty() || prf.precision == 1.0,
            "seed {seed}: RID-Tree precision {} != 1.0",
            prf.precision
        );
    }
}

#[test]
fn rid_recall_dominates_rid_tree_recall() {
    // RID's initiator set extends the forest-root set, so its recall can
    // never be lower than RID-Tree's on the same snapshot.
    for seed in 0..3 {
        let sc = scenario(seed, 0.02, 25);
        let truth: Vec<NodeId> = sc.ground_truth.nodes().collect();
        let tree = RidTree::new(3.0).unwrap().detect(&sc.snapshot);
        let rid = Rid::new(3.0, 2.5).unwrap().detect(&sc.snapshot);
        let tree_prf = evaluate_identities(&tree.nodes(), &truth);
        let rid_prf = evaluate_identities(&rid.nodes(), &truth);
        assert!(
            rid_prf.recall >= tree_prf.recall - 1e-12,
            "seed {seed}: RID recall {} < RID-Tree recall {}",
            rid_prf.recall,
            tree_prf.recall
        );
    }
}

#[test]
fn beta_extremes_bracket_detection_count() {
    let sc = scenario(3, 0.02, 25);
    let loose = Rid::new(3.0, 0.0).unwrap().detect(&sc.snapshot);
    let tight = Rid::new(3.0, 1e6).unwrap().detect(&sc.snapshot);
    // beta = 0: (almost) every node is an initiator — only nodes whose
    // activation edge has probability exactly 1 tie with the explained
    // option, and ties prefer the explanation.
    assert!(loose.len() >= sc.snapshot.node_count() * 9 / 10);
    // huge beta: only the forced tree roots remain.
    assert_eq!(tight.len(), tight.tree_count);
    assert!(tight.len() < loose.len());
}

#[test]
fn detection_counts_are_monotone_in_beta() {
    let sc = scenario(4, 0.02, 25);
    let mut last = usize::MAX;
    for beta in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let n = Rid::new(3.0, beta).unwrap().detect(&sc.snapshot).len();
        assert!(n <= last, "beta {beta}: count {n} > previous {last}");
        last = n;
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = scenario(9, 0.01, 10);
    let b = scenario(9, 0.01, 10);
    assert_eq!(a.snapshot, b.snapshot);
    let rid = Rid::new(3.0, 1.0).unwrap();
    assert_eq!(rid.detect(&a.snapshot), rid.detect(&b.snapshot));
}

#[test]
fn detection_survives_masked_states() {
    let sc = scenario(5, 0.01, 15);
    let mut rng = StdRng::seed_from_u64(77);
    let masked = sc.snapshot.with_masked_states(0.3, &mut rng);
    let detection = Rid::new(3.0, 2.0).unwrap().detect(&masked);
    // Detection still runs and every reported initiator carries a
    // concrete state even where the snapshot was masked.
    assert!(!detection.is_empty());
    for d in &detection.initiators {
        assert!(
            d.state.is_active(),
            "initiator {} has state {}",
            d.node,
            d.state
        );
    }
}

#[test]
fn detected_ids_live_in_the_original_network() {
    let sc = scenario(6, 0.01, 15);
    let detection = Rid::new(3.0, 1.0).unwrap().detect(&sc.snapshot);
    for d in &detection.initiators {
        assert!(sc.diffusion.contains(d.node));
        // And they are genuinely infected.
        assert!(sc.cascade.state(d.node).is_active());
    }
}

#[test]
fn snapshot_round_trips_through_serde() {
    let sc = scenario(8, 0.005, 5);
    let json = sc.snapshot.to_json_string();
    let back = InfectedNetwork::from_json_str(&json).expect("deserialize");
    assert_eq!(back, sc.snapshot);
    let rid = Rid::new(3.0, 1.0).unwrap();
    assert_eq!(rid.detect(&back), rid.detect(&sc.snapshot));
}

#[test]
fn snap_io_round_trip_preserves_detection() {
    let mut rng = StdRng::seed_from_u64(2);
    let social = epinions_like_scaled(0.005, &mut rng);
    let mut buf = Vec::new();
    isomit::graph::io::write_snap(&social, &mut buf).unwrap();
    let reloaded = isomit::graph::io::read_snap(buf.as_slice()).unwrap();
    // SNAP drops weights; structure and signs survive.
    assert_eq!(reloaded.node_count(), social.node_count());
    assert_eq!(reloaded.edge_count(), social.edge_count());
    assert_eq!(reloaded.positive_edge_count(), social.positive_edge_count());
}
