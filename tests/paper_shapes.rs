//! Guard-rail tests for the paper's qualitative claims — the shapes the
//! benchmark binaries reproduce, pinned at small scale with fixed seeds
//! so regressions are caught by `cargo test`.

use isomit::prelude::*;
use isomit_bench::{build_trials, evaluate_identity_over_trials, mean_std, ExpOptions, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn options() -> ExpOptions {
    ExpOptions {
        scale: 0.03,
        trials: 4,
        seed: 505,
        ..ExpOptions::default()
    }
}

fn mean_f1(detector: &dyn InitiatorDetector, trials: &[isomit_bench::Trial]) -> (f64, f64, f64) {
    let (prfs, _) = evaluate_identity_over_trials(detector, trials);
    let (p, _) = mean_std(&prfs.iter().map(|x| x.precision).collect::<Vec<_>>());
    let (r, _) = mean_std(&prfs.iter().map(|x| x.recall).collect::<Vec<_>>());
    let (f, _) = mean_std(&prfs.iter().map(|x| x.f1).collect::<Vec<_>>());
    (p, r, f)
}

#[test]
fn figure4_shape_rid_tree_perfect_precision_low_recall() {
    for network in Network::ALL {
        let trials = build_trials(network, &options());
        let detector = RidTree::new(3.0).unwrap();
        let (prfs, counts) = evaluate_identity_over_trials(&detector, &trials);
        for (prf, count) in prfs.iter().zip(&counts) {
            // Precision is 0 by convention on an empty detection; every
            // non-empty detection must be perfectly precise.
            if *count > 0 {
                assert!(
                    prf.precision > 0.999,
                    "{}: RID-Tree precision {}",
                    network.name(),
                    prf.precision
                );
            }
            assert!(
                prf.recall < 0.6,
                "{}: RID-Tree recall {} not low",
                network.name(),
                prf.recall
            );
        }
    }
}

#[test]
fn figure4_shape_calibrated_rid_beats_baselines_recall() {
    // RID splits trees, so at matched (calibrated) beta it must recover
    // strictly more true initiators than the roots-only baseline.
    for network in Network::ALL {
        let trials = build_trials(network, &options());
        let (_, r_rid, _) = mean_f1(&Rid::new(3.0, 2.5).unwrap(), &trials);
        let (_, r_tree, _) = mean_f1(&RidTree::new(3.0).unwrap(), &trials);
        assert!(
            r_rid >= r_tree,
            "{}: RID recall {r_rid} below RID-Tree {r_tree}",
            network.name()
        );
    }
}

#[test]
fn figure5_shape_precision_rises_recall_falls_with_beta() {
    let trials = build_trials(Network::Epinions, &options());
    let low = mean_f1(&Rid::new(3.0, 0.2).unwrap(), &trials);
    let high = mean_f1(&Rid::new(3.0, 3.0).unwrap(), &trials);
    assert!(
        high.0 > low.0,
        "precision should rise with beta: {} -> {}",
        low.0,
        high.0
    );
    assert!(
        high.1 < low.1,
        "recall should fall with beta: {} -> {}",
        low.1,
        high.1
    );
}

#[test]
fn figure6_shape_state_quality_improves_with_beta() {
    let trials = build_trials(Network::Slashdot, &options());
    let metrics_at = |beta: f64| {
        let m = isomit_bench::evaluate_states_over_trials(&Rid::new(3.0, beta).unwrap(), &trials);
        let (acc, _) = mean_std(&m.iter().map(|x| x.accuracy).collect::<Vec<_>>());
        let (mae, _) = mean_std(&m.iter().map(|x| x.mae).collect::<Vec<_>>());
        (acc, mae)
    };
    let (acc_low, mae_low) = metrics_at(0.2);
    let (acc_high, mae_high) = metrics_at(3.0);
    assert!(
        acc_high >= acc_low,
        "state accuracy should improve with beta: {acc_low} -> {acc_high}"
    );
    assert!(
        mae_high <= mae_low,
        "state MAE should drop with beta: {mae_low} -> {mae_high}"
    );
    assert!(
        acc_high > 0.9,
        "high-beta accuracy {acc_high} should approach 1"
    );
    assert!(
        mae_high < 0.2,
        "high-beta MAE {mae_high} should drop below 0.2"
    );
}

#[test]
fn diffusion_shape_mfc_outreaches_ic_and_unboosted_mfc() {
    let mut rng = StdRng::seed_from_u64(6);
    let social = epinions_like_scaled(0.03, &mut rng);
    let diffusion = paper_weights(&social, &mut rng);
    let seeds = SeedSet::sample(&diffusion, 30, 0.5, &mut rng);
    let reach = |model: &dyn DiffusionModel| {
        let mut total = 0usize;
        for r in 0..10 {
            let mut rng = StdRng::seed_from_u64(900 + r);
            total += model
                .simulate(&diffusion, &seeds, &mut rng)
                .unwrap()
                .infected_count();
        }
        total as f64 / 10.0
    };
    let mfc3 = reach(&Mfc::new(3.0).unwrap());
    let mfc1 = reach(&Mfc::new(1.0).unwrap());
    let ic = reach(&IndependentCascade::new());
    assert!(
        mfc3 > 2.0 * mfc1,
        "boosting should expand reach: {mfc3} vs {mfc1}"
    );
    assert!(mfc3 > 2.0 * ic, "MFC should out-reach IC: {mfc3} vs {ic}");
}

#[test]
fn diffusion_shape_only_mfc_flips() {
    let mut rng = StdRng::seed_from_u64(8);
    let social = slashdot_like_scaled(0.02, &mut rng);
    let diffusion = paper_weights(&social, &mut rng);
    let seeds = SeedSet::sample(&diffusion, 30, 0.5, &mut rng);
    let models: Vec<Box<dyn DiffusionModel>> = vec![
        Box::new(IndependentCascade::new()),
        Box::new(LinearThreshold::new()),
        Box::new(Sir::new(0.5).unwrap()),
        Box::new(PolarityIc::new(0.5).unwrap()),
    ];
    for model in &models {
        let mut rng = StdRng::seed_from_u64(1);
        let c = model.simulate(&diffusion, &seeds, &mut rng).unwrap();
        assert_eq!(c.flip_count(), 0, "{} must not flip", model.name());
    }
    // MFC flips at least once across a few runs on this mixed-sign graph.
    let mfc = Mfc::new(3.0).unwrap();
    let flips: usize = (0..5)
        .map(|r| {
            let mut rng = StdRng::seed_from_u64(r);
            mfc.simulate(&diffusion, &seeds, &mut rng)
                .unwrap()
                .flip_count()
        })
        .sum();
    assert!(
        flips > 0,
        "MFC should produce flips on a mixed-sign network"
    );
}
