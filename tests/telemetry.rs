//! Telemetry must observe without perturbing: instrumented RID and
//! Monte-Carlo runs are bit-identical to runs with the global registry
//! disabled, for every thread count — and the instrumentation really is
//! wired (the stage histograms receive recordings while enabled).
//!
//! This file is its own integration-test binary (its own process), so
//! toggling the process-global registry here cannot race other test
//! binaries. The enabled/disabled toggling and the wiring assertions
//! live in ONE `#[test]` function because `#[test]`s within a binary
//! run on parallel threads.

use isomit::prelude::*;
use isomit_diffusion::par_estimate_infection_probabilities;
use isomit_telemetry::names;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("thread pool")
        .install(f)
}

struct Fixture {
    snapshot: isomit_diffusion::InfectedNetwork,
    diffusion: SignedDigraph,
    seeds: SeedSet,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(0.01, &mut rng);
    let scenario = build_scenario(&social, &isomit_datasets::ScenarioConfig::small(), &mut rng);
    let seeds = SeedSet::sample(&scenario.diffusion, 10, 0.5, &mut rng);
    Fixture {
        snapshot: scenario.snapshot,
        diffusion: scenario.diffusion,
        seeds,
    }
}

#[test]
fn instrumentation_is_invisible_and_wired() {
    let fx = fixture(17);
    let rid = Rid::new(3.0, 0.5).expect("valid detector");
    let model = Mfc::new(3.0).expect("valid model");
    let registry = isomit_telemetry::global();

    // Baseline: registry enabled, one thread.
    registry.set_enabled(true);
    let before = registry.snapshot();
    let baseline_detect = with_threads(1, || rid.detect(&fx.snapshot));
    let baseline_mc = with_threads(1, || {
        par_estimate_infection_probabilities(&model, &fx.diffusion, &fx.seeds, 200, 0xBEEF)
            .expect("estimate")
    });

    // Wiring: the instrumented run recorded into the stage histograms.
    let after = registry.snapshot();
    for name in [
        names::RID_EXTRACT_STAGE_NS,
        names::RID_QUERY_STAGE_NS,
        names::MC_BATCH_NS,
    ] {
        let recorded = after.histogram(name).map_or(0, |h| h.count());
        let prior = before.histogram(name).map_or(0, |h| h.count());
        assert!(
            recorded > prior,
            "{name}: expected new recordings while enabled ({prior} -> {recorded})"
        );
    }

    // Instrumented runs are bit-identical across thread counts…
    for threads in [2, 4] {
        let detect = with_threads(threads, || rid.detect(&fx.snapshot));
        assert_eq!(
            detect, baseline_detect,
            "detect, enabled, threads={threads}"
        );
        assert_eq!(
            detect.objective.to_bits(),
            baseline_detect.objective.to_bits(),
            "objective bits, enabled, threads={threads}"
        );
        let mc = with_threads(threads, || {
            par_estimate_infection_probabilities(&model, &fx.diffusion, &fx.seeds, 200, 0xBEEF)
                .expect("estimate")
        });
        assert_eq!(mc, baseline_mc, "monte-carlo, enabled, threads={threads}");
    }

    // …and identical to uninstrumented (disabled-registry) runs.
    registry.set_enabled(false);
    let count_while_disabled =
        |name: &str| registry.snapshot().histogram(name).map_or(0, |h| h.count());
    let frozen = count_while_disabled(names::RID_EXTRACT_STAGE_NS);
    for threads in [1, 2, 4] {
        let detect = with_threads(threads, || rid.detect(&fx.snapshot));
        assert_eq!(
            detect, baseline_detect,
            "detect, disabled, threads={threads}"
        );
        assert_eq!(
            detect.objective.to_bits(),
            baseline_detect.objective.to_bits(),
            "objective bits, disabled, threads={threads}"
        );
        let mc = with_threads(threads, || {
            par_estimate_infection_probabilities(&model, &fx.diffusion, &fx.seeds, 200, 0xBEEF)
                .expect("estimate")
        });
        assert_eq!(mc, baseline_mc, "monte-carlo, disabled, threads={threads}");
    }
    // Disabled really means dropped: no recordings accumulated.
    assert_eq!(
        count_while_disabled(names::RID_EXTRACT_STAGE_NS),
        frozen,
        "disabled registry must not record"
    );
    registry.set_enabled(true);
}
