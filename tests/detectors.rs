//! Equivalence suite for the `isomit-detectors` trait seam: detectors
//! dispatched through [`isomit_detectors::SourceDetector`] must be
//! bit-identical to the legacy `isomit-core` entry points they wrap —
//! on the checked-in golden fixtures, on randomized snapshots, and
//! under every rayon thread count (this binary runs in the CI
//! determinism matrix at `RAYON_NUM_THREADS` 1 and 4).

use isomit::prelude::*;
use isomit_core::{
    InitiatorDetector, RidConfig, RidObjective, RidPositive, RidResult, RidTree, RumorCentrality,
};
use isomit_datasets::ScenarioConfig;
use isomit_detectors::{build, DetectorKind};
use isomit_diffusion::InfectedNetwork;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;
use std::path::PathBuf;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("thread pool")
        .install(f)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The golden cases pinned by `tests/golden.rs`, re-answered here
/// through the trait seam instead of `Rid` directly.
fn golden_cases() -> Vec<(&'static str, RidConfig)> {
    vec![
        ("default", RidConfig::default()),
        (
            "beta_zero",
            RidConfig {
                beta: 0.0,
                ..RidConfig::default()
            },
        ),
        (
            "log_likelihood",
            RidConfig {
                objective: RidObjective::LogLikelihood,
                ..RidConfig::default()
            },
        ),
        (
            "no_external_support",
            RidConfig {
                external_support: false,
                ..RidConfig::default()
            },
        ),
    ]
}

/// A small deterministic snapshot for the randomized comparisons.
fn random_snapshot(seed: u64, n_initiators: usize) -> InfectedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(0.008, &mut rng);
    let config = ScenarioConfig {
        n_initiators,
        ..ScenarioConfig::small()
    };
    build_scenario(&social, &config, &mut rng).snapshot
}

/// Dispatched RID reproduces the checked-in golden answers byte for
/// byte: the trait seam may not perturb the pipeline's output encoding
/// in any way.
#[test]
fn dispatched_rid_matches_golden_fixtures_byte_for_byte() {
    let dir = golden_dir();
    for (name, config) in golden_cases() {
        let snapshot_text = std::fs::read_to_string(dir.join(format!("{name}.snapshot.json")))
            .expect("golden snapshot fixture exists");
        let snapshot =
            InfectedNetwork::from_json_str(&snapshot_text).expect("golden snapshot parses");
        let expected = std::fs::read_to_string(dir.join(format!("{name}.expected.json")))
            .expect("golden expected fixture exists");

        let detector = build(DetectorKind::Rid, &config).expect("golden configs are valid");
        let found = detector
            .detect_sources(&snapshot)
            .expect("golden snapshots are valid inputs");
        let result = RidResult {
            config: Rid::from_config(config).expect("valid").config(),
            detection: found.detection,
        };
        assert_eq!(
            result.to_json_string(),
            expected,
            "{name}: dispatched RID diverged from the golden fixture"
        );
    }
}

/// Every trait-dispatched detector agrees bit for bit with its legacy
/// counterpart on the same snapshot, at every thread count.
#[test]
fn dispatch_is_bit_identical_to_legacy_across_thread_counts() {
    let snapshot = random_snapshot(77, 12);
    let config = RidConfig {
        beta: 3.0,
        ..RidConfig::default()
    };
    let legacy: Vec<(DetectorKind, Detection)> = vec![
        (
            DetectorKind::Rid,
            Rid::from_config(config).expect("valid").detect(&snapshot),
        ),
        (
            DetectorKind::RidTree,
            RidTree::new(config.alpha).expect("valid").detect(&snapshot),
        ),
        (
            DetectorKind::RidPositive,
            RidPositive::new().detect(&snapshot),
        ),
        (
            DetectorKind::RumorCentrality,
            RumorCentrality::new().detect(&snapshot),
        ),
    ];
    for threads in [1, 2, 4] {
        for (kind, expected) in &legacy {
            let got = with_threads(threads, || {
                build(*kind, &config)
                    .expect("valid config")
                    .detect_sources(&snapshot)
                    .expect("valid snapshot")
            });
            assert_eq!(
                &got.detection,
                expected,
                "{}: dispatch diverged from legacy at threads={threads}",
                kind.as_label()
            );
            assert_eq!(
                got.detection.objective.to_bits(),
                expected.objective.to_bits(),
                "{}: objective bits diverged at threads={threads}",
                kind.as_label()
            );
        }
        // Jordan center has no legacy counterpart; pin thread-count
        // invariance against its own single-thread answer instead.
        let baseline = with_threads(1, || {
            build(DetectorKind::JordanCenter, &config)
                .expect("valid config")
                .detect_sources(&snapshot)
                .expect("valid snapshot")
        });
        let got = with_threads(threads, || {
            build(DetectorKind::JordanCenter, &config)
                .expect("valid config")
                .detect_sources(&snapshot)
                .expect("valid snapshot")
        });
        assert_eq!(
            got.detection, baseline.detection,
            "jordan_center: thread-count dependence at threads={threads}"
        );
        assert_eq!(got.ranked, baseline.ranked);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Randomized snapshots: dispatched RID ≡ legacy `Rid::detect`
    // bit for bit, for arbitrary seeds, outbreak sizes, and β.
    #[test]
    fn dispatched_rid_equals_legacy_on_random_snapshots(
        seed in 0u64..1_000,
        n_initiators in 1usize..20,
        beta_ix in 0usize..4,
    ) {
        let beta = [0.0, 0.1, 1.0, 3.0][beta_ix];
        let snapshot = random_snapshot(seed, n_initiators);
        let config = RidConfig { beta, ..RidConfig::default() };
        let legacy = Rid::from_config(config).expect("valid").detect(&snapshot);
        let got = build(DetectorKind::Rid, &config)
            .expect("valid config")
            .detect_sources(&snapshot)
            .expect("valid snapshot");
        prop_assert_eq!(&got.detection, &legacy);
        prop_assert_eq!(
            got.detection.objective.to_bits(),
            legacy.objective.to_bits()
        );
    }

    // Randomized snapshots: the rumor-centrality estimator's point
    // detection matches core's legacy `RumorCentrality` exactly.
    #[test]
    fn dispatched_rumor_centrality_equals_legacy_on_random_snapshots(
        seed in 0u64..1_000,
        n_initiators in 1usize..20,
    ) {
        let snapshot = random_snapshot(seed, n_initiators);
        let config = RidConfig::default();
        let legacy = RumorCentrality::new().detect(&snapshot);
        let got = build(DetectorKind::RumorCentrality, &config)
            .expect("valid config")
            .detect_sources(&snapshot)
            .expect("valid snapshot");
        prop_assert_eq!(&got.detection, &legacy);
    }
}
