//! Equivalence suite for the incremental streaming layer: replaying
//! any valid delta sequence through [`IncrementalRid`] must produce a
//! [`RidResult`] bit-identical to a cold `Rid::detect` over the final
//! snapshot — after the full sequence, after every prefix, and under
//! every rayon thread count (this binary runs in the CI determinism
//! matrix at `RAYON_NUM_THREADS` 1 and 4).
//!
//! The golden watch fixture (`tests/golden/watch.*.jsonl`) pins one
//! delta script and the exact answer stream it must produce;
//! regenerate after an intentional behavior change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test incremental
//! ```

use isomit::prelude::*;
use isomit_core::{IncrementalRid, RidConfig, RidDelta, RidResult};
use isomit_graph::json::Value;
use isomit_graph::{NodeId, NodeState, Sign};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::ThreadPoolBuilder;
use std::path::PathBuf;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("thread pool")
        .install(f)
}

/// Deterministically generates a valid delta script: `nodes` initial
/// infections, up to `edges` random edges among them, then a `tail` of
/// mixed traffic (fresh infections, late edges, state flips). Every
/// delta is pre-validated against a probe session, so replaying the
/// script never rejects.
fn script(seed: u64, nodes: usize, edges: usize, tail: usize) -> Vec<RidDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut probe = IncrementalRid::new(RidConfig::default()).expect("valid default config");
    let mut deltas = Vec::new();
    let mut states = Vec::with_capacity(nodes);

    for i in 0..nodes {
        let state = if rng.gen_bool(0.7) {
            NodeState::Positive
        } else {
            NodeState::Negative
        };
        let delta = RidDelta::Infect {
            node: NodeId::from_index(i),
            state,
        };
        probe.apply(&delta).expect("fresh infections are valid");
        deltas.push(delta);
        states.push(state);
    }

    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < edges && attempts < edges * 4 {
        attempts += 1;
        let delta = RidDelta::AddEdge {
            src: NodeId::from_index(rng.gen_range(0..nodes)),
            dst: NodeId::from_index(rng.gen_range(0..nodes)),
            sign: if rng.gen_bool(0.8) {
                Sign::Positive
            } else {
                Sign::Negative
            },
            weight: 0.05 + 0.9 * rng.gen_range(0.0..1.0),
        };
        if probe.apply(&delta).is_ok() {
            deltas.push(delta);
            added += 1;
        }
    }

    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < tail && attempts < tail * 8 + 8 {
        attempts += 1;
        let population = states.len();
        let delta = match rng.gen_range(0..4usize) {
            0 | 1 => {
                let state = if rng.gen_bool(0.5) {
                    NodeState::Positive
                } else {
                    NodeState::Negative
                };
                states.push(state);
                RidDelta::Infect {
                    node: NodeId::from_index(population),
                    state,
                }
            }
            2 => RidDelta::AddEdge {
                src: NodeId::from_index(rng.gen_range(0..population)),
                dst: NodeId::from_index(rng.gen_range(0..population)),
                sign: Sign::Positive,
                weight: 0.05 + 0.9 * rng.gen_range(0.0..1.0),
            },
            _ => {
                let node = rng.gen_range(0..population);
                let flipped = match states[node] {
                    NodeState::Positive => NodeState::Negative,
                    _ => NodeState::Positive,
                };
                states[node] = flipped;
                RidDelta::FlipState {
                    node: NodeId::from_index(node),
                    state: flipped,
                }
            }
        };
        if probe.apply(&delta).is_ok() {
            deltas.push(delta);
            accepted += 1;
        }
    }
    deltas
}

/// Cold reference: the `RidResult` a from-scratch detector produces on
/// `session`'s current snapshot.
fn cold_answer(session: &IncrementalRid) -> RidResult {
    let rid = Rid::from_config(session.config()).expect("valid session config");
    RidResult {
        config: rid.config(),
        detection: rid.detect(&session.snapshot()),
    }
}

/// Asserts full bit-identity between an incremental answer and its
/// cold reference: equal detections, equal objective bit patterns,
/// equal canonical JSON bytes.
fn assert_bit_identical(incremental: &RidResult, cold: &RidResult, context: &str) {
    assert_eq!(
        incremental.detection, cold.detection,
        "{context}: detections diverged"
    );
    assert_eq!(
        incremental.detection.objective.to_bits(),
        cold.detection.objective.to_bits(),
        "{context}: objective bit patterns diverged"
    );
    assert_eq!(
        incremental.to_json_string(),
        cold.to_json_string(),
        "{context}: JSON encodings diverged"
    );
}

#[test]
fn prefix_consistency_every_delta_answers_like_cold() {
    let deltas = script(4242, 24, 48, 12);
    let mut session = IncrementalRid::new(RidConfig::default()).expect("valid default config");
    let mut fell_back = false;
    for (i, delta) in deltas.iter().enumerate() {
        session.apply(delta).expect("script deltas are valid");
        let (answer, outcome) = session.answer_detailed();
        fell_back |= outcome.full_recompute;
        assert_bit_identical(&answer, &cold_answer(&session), &format!("prefix {i}"));
    }
    assert!(
        fell_back,
        "the very first answer on an all-dirty session must fall back"
    );
    assert_eq!(session.deltas_applied(), deltas.len() as u64);
}

#[test]
fn replay_answers_are_thread_count_invariant() {
    let deltas = script(77, 20, 30, 10);
    let replay = || {
        let mut session = IncrementalRid::new(RidConfig::default()).expect("valid default config");
        deltas
            .iter()
            .map(|delta| {
                session.apply(delta).expect("script deltas are valid");
                session.answer().to_json_string()
            })
            .collect::<Vec<String>>()
    };
    let baseline = with_threads(1, replay);
    for threads in [2, 4] {
        let got = with_threads(threads, replay);
        assert_eq!(got, baseline, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Randomized graphs × delta sequences × configs: replaying a full
    // script is bit-identical to cold-loading the final snapshot.
    #[test]
    fn replay_equals_cold_recompute_on_random_scripts(
        seed in 0u64..1_000,
        nodes in 8usize..40,
        tail in 0usize..20,
        beta_ix in 0usize..3,
    ) {
        let beta = [0.0, 0.1, 3.0][beta_ix];
        let config = RidConfig { beta, ..RidConfig::default() };
        let mut session = IncrementalRid::new(config).expect("valid config");
        for delta in script(seed, nodes, nodes * 2, tail) {
            session.apply(&delta).expect("script deltas are valid");
        }
        let answer = session.answer();
        let cold = cold_answer(&session);
        prop_assert_eq!(&answer.detection, &cold.detection);
        prop_assert_eq!(
            answer.detection.objective.to_bits(),
            cold.detection.objective.to_bits()
        );
        prop_assert_eq!(answer.to_json_string(), cold.to_json_string());
    }

    // Answering mid-stream never perturbs later answers: a session
    // answered after every delta ends bit-identical to one answered
    // only once at the end.
    #[test]
    fn intermediate_answers_do_not_perturb_the_final_one(
        seed in 0u64..1_000,
        nodes in 6usize..24,
        tail in 1usize..12,
    ) {
        let deltas = script(seed, nodes, nodes, tail);
        let config = RidConfig::default();
        let mut chatty = IncrementalRid::new(config).expect("valid config");
        let mut quiet = IncrementalRid::new(config).expect("valid config");
        for delta in &deltas {
            chatty.apply(delta).expect("script deltas are valid");
            let _ = chatty.answer();
            quiet.apply(delta).expect("script deltas are valid");
        }
        prop_assert_eq!(
            chatty.answer().to_json_string(),
            quiet.answer().to_json_string()
        );
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The pinned watch script: one delta JSON per line in
/// `watch.deltas.jsonl`, the exact answer stream in
/// `watch.expected.jsonl` — byte-for-byte, wire encoding included.
#[test]
fn golden_watch_fixture_is_byte_exact() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let deltas_path = dir.join("watch.deltas.jsonl");
    let expected_path = dir.join("watch.expected.jsonl");

    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        let deltas = script(7, 16, 24, 9);
        let delta_lines: Vec<String> = deltas.iter().map(|d| d.to_json_value().to_json()).collect();
        std::fs::write(&deltas_path, delta_lines.join("\n") + "\n")
            .expect("write watch deltas fixture");
        let mut session = IncrementalRid::new(RidConfig::default()).expect("valid default config");
        let answer_lines: Vec<String> = deltas
            .iter()
            .map(|delta| {
                session.apply(delta).expect("script deltas are valid");
                session.answer().to_json_string()
            })
            .collect();
        std::fs::write(&expected_path, answer_lines.join("\n") + "\n")
            .expect("write watch expected fixture");
        return;
    }

    let deltas_text = std::fs::read_to_string(&deltas_path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            deltas_path.display()
        )
    });
    let expected_text = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            expected_path.display()
        )
    });
    let expected: Vec<&str> = expected_text.lines().collect();

    let mut session = IncrementalRid::new(RidConfig::default()).expect("valid default config");
    for (i, line) in deltas_text.lines().enumerate() {
        let value =
            Value::parse(line).unwrap_or_else(|e| panic!("corrupt delta fixture line {i}: {e}"));
        let delta = RidDelta::from_json_value(&value)
            .unwrap_or_else(|e| panic!("corrupt delta fixture line {i}: {e}"));
        // The delta codec must be byte-stable on its own fixture.
        assert_eq!(
            delta.to_json_value().to_json(),
            line,
            "delta {i}: re-encoding drifted from the checked-in bytes"
        );
        session.apply(&delta).expect("golden deltas are valid");
        let answer = session.answer().to_json_string();
        assert_eq!(
            Some(&answer.as_str()),
            expected.get(i),
            "delta {i}: answer diverged from the golden stream; if the \
             change is intentional, regenerate with UPDATE_GOLDEN=1 and commit"
        );
    }
    assert_eq!(
        expected.len(),
        deltas_text.lines().count(),
        "fixture line counts must match"
    );
}
