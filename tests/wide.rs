//! Determinism suite for the 64-lane wide Monte-Carlo engine: batch
//! width must not change any individual trial, every lane must replay
//! bit-identically through the scalar reference, and the parallel
//! estimator must match the sequential one for every thread count.
//! CI runs this binary under `RAYON_NUM_THREADS=1` and `=4`.

use isomit::prelude::*;
use isomit_diffusion::{
    estimate_infection_probabilities_wide, estimate_infection_probabilities_wide_reference,
    par_estimate_infection_probabilities_wide, simulate_wide_reference, wide_lane_key,
    WideSimulator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("thread pool")
        .install(f)
}

fn small_scenario(seed: u64) -> (SignedDigraph, SeedSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(0.01, &mut rng);
    let diffusion = isomit_datasets::paper_weights(&social, &mut rng);
    let seeds = SeedSet::sample(&diffusion, 20, 0.5, &mut rng);
    (diffusion, seeds)
}

const MASTER: u64 = 0xD15EA5E;

/// Lane keys come from the *global* trial index, so packing the same
/// trials into 1-lane, 7-lane, or full 64-lane batches must produce
/// identical per-trial outcomes — and each must equal the scalar
/// reference replay of its lane key.
#[test]
fn batch_width_does_not_change_any_trial() {
    let (diffusion, seeds) = small_scenario(11);
    let model = Mfc::new(3.0).unwrap();
    let sim = WideSimulator::new(&model, &diffusion);
    let trials = 70usize;
    let keys: Vec<u64> = (0..trials).map(|t| wide_lane_key(MASTER, t)).collect();

    let run_width = |width: usize| -> Vec<Vec<NodeState>> {
        let mut per_trial = Vec::with_capacity(trials);
        for chunk in keys.chunks(width) {
            let batch = sim.run(&seeds, chunk).expect("valid batch");
            for lane in 0..batch.lanes() {
                per_trial.push(batch.lane_states(lane));
            }
        }
        per_trial
    };

    let full = run_width(64);
    for width in [1, 7] {
        assert_eq!(run_width(width), full, "width={width}");
    }
    for (t, states) in full.iter().enumerate() {
        let (reference, _) =
            simulate_wide_reference(&model, &diffusion, &seeds, wide_lane_key(MASTER, t))
                .expect("valid trial");
        assert_eq!(states, &reference, "trial {t} diverged from scalar replay");
    }
}

#[test]
fn parallel_wide_estimate_is_bit_identical_to_sequential() {
    let (diffusion, seeds) = small_scenario(11);
    let model = Mfc::new(3.0).unwrap();
    let sequential =
        estimate_infection_probabilities_wide(&model, &diffusion, &seeds, 500, MASTER).unwrap();
    for threads in [1, 2, 4, 7] {
        let parallel = with_threads(threads, || {
            par_estimate_infection_probabilities_wide(&model, &diffusion, &seeds, 500, MASTER)
                .unwrap()
        });
        assert_eq!(sequential, parallel, "threads={threads}");
    }
}

/// Ragged trial counts — not divisible by 64 — exercise the masked
/// final batch; the estimate must still match the per-trial scalar
/// reference exactly.
#[test]
fn ragged_trial_counts_match_the_scalar_reference() {
    let (diffusion, seeds) = small_scenario(12);
    let model = Mfc::new(3.0).unwrap();
    for runs in [1usize, 63, 64, 65, 130] {
        let wide = estimate_infection_probabilities_wide(&model, &diffusion, &seeds, runs, MASTER)
            .unwrap();
        let reference = estimate_infection_probabilities_wide_reference(
            &model, &diffusion, &seeds, runs, MASTER,
        )
        .unwrap();
        assert_eq!(wide, reference, "runs={runs}");
    }
}

#[test]
fn wide_master_seeds_give_distinct_streams() {
    let (diffusion, seeds) = small_scenario(13);
    let model = Mfc::new(3.0).unwrap();
    let a = par_estimate_infection_probabilities_wide(&model, &diffusion, &seeds, 300, 1).unwrap();
    let b = par_estimate_infection_probabilities_wide(&model, &diffusion, &seeds, 300, 2).unwrap();
    assert_ne!(a, b, "different master seeds should not collide");
}
