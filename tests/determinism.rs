//! Regression tests for the deterministic parallel execution layer:
//! given the same master seed, every parallel path must produce output
//! bit-identical to its sequential reference, for every thread count.

use isomit::prelude::*;
use isomit_bench::{build_trials, ExpOptions, Network};
use isomit_core::extract_cascade_forest;
use isomit_diffusion::{
    estimate_infection_probabilities_seeded, par_estimate_infection_probabilities,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::ThreadPoolBuilder;

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("thread pool")
        .install(f)
}

fn small_scenario(seed: u64) -> (SignedDigraph, SeedSet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(0.01, &mut rng);
    let diffusion = isomit_datasets::paper_weights(&social, &mut rng);
    let seeds = SeedSet::sample(&diffusion, 20, 0.5, &mut rng);
    (diffusion, seeds)
}

#[test]
fn parallel_monte_carlo_is_bit_identical_to_sequential() {
    let (diffusion, seeds) = small_scenario(11);
    let model = Mfc::new(3.0).unwrap();
    let master = 0xD15EA5E;
    let sequential =
        estimate_infection_probabilities_seeded(&model, &diffusion, &seeds, 500, master).unwrap();
    for threads in [1, 2, 4, 7] {
        let parallel = with_threads(threads, || {
            par_estimate_infection_probabilities(&model, &diffusion, &seeds, 500, master).unwrap()
        });
        assert_eq!(sequential, parallel, "threads={threads}");
    }
}

#[test]
fn monte_carlo_master_seeds_give_distinct_streams() {
    let (diffusion, seeds) = small_scenario(12);
    let model = Mfc::new(3.0).unwrap();
    let a = par_estimate_infection_probabilities(&model, &diffusion, &seeds, 300, 1).unwrap();
    let b = par_estimate_infection_probabilities(&model, &diffusion, &seeds, 300, 2).unwrap();
    assert_ne!(a, b, "different master seeds should not collide");
}

#[test]
fn forest_extraction_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(21);
    let social = epinions_like_scaled(0.01, &mut rng);
    let config = isomit_datasets::ScenarioConfig {
        n_initiators: 15,
        ..Default::default()
    };
    let scenario = build_scenario(&social, &config, &mut rng);
    let baseline = with_threads(1, || extract_cascade_forest(&scenario.snapshot, 3.0));
    for threads in [2, 3, 8] {
        let got = with_threads(threads, || extract_cascade_forest(&scenario.snapshot, 3.0));
        assert_eq!(got, baseline, "threads={threads}");
    }
}

#[test]
fn rid_detection_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(31);
    let social = slashdot_like_scaled(0.01, &mut rng);
    let config = isomit_datasets::ScenarioConfig {
        n_initiators: 15,
        ..Default::default()
    };
    let scenario = build_scenario(&social, &config, &mut rng);
    let rid = Rid::new(3.0, 0.5).unwrap();
    let baseline = with_threads(1, || rid.detect(&scenario.snapshot));
    for threads in [2, 5] {
        let got = with_threads(threads, || rid.detect(&scenario.snapshot));
        assert_eq!(got, baseline, "threads={threads}");
    }
    // The float objective, not just the id set, must match bit-exactly:
    // outcomes are folded in tree order regardless of scheduling.
    assert_eq!(
        with_threads(3, || rid.detect(&scenario.snapshot))
            .objective
            .to_bits(),
        baseline.objective.to_bits()
    );
}

#[test]
fn trial_building_is_thread_count_invariant() {
    let opts = ExpOptions {
        scale: 0.01,
        trials: 3,
        seed: 99,
        threads: Some(1),
    };
    let baseline = build_trials(Network::Epinions, &opts);
    for threads in [2, 4] {
        let opts = ExpOptions {
            threads: Some(threads),
            ..opts
        };
        let got = build_trials(Network::Epinions, &opts);
        assert_eq!(got.len(), baseline.len());
        for (a, b) in got.iter().zip(&baseline) {
            assert_eq!(
                a.scenario.snapshot, b.scenario.snapshot,
                "threads={threads}"
            );
            assert_eq!(a.truth_pairs, b.truth_pairs, "threads={threads}");
        }
    }
}

#[test]
fn legacy_sequential_entry_point_unchanged() {
    // The original &mut RngCore API must keep working alongside the
    // seeded variants.
    let (diffusion, seeds) = small_scenario(41);
    let model = Mfc::new(3.0).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let a = estimate_infection_probabilities(&model, &diffusion, &seeds, 50, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let b = estimate_infection_probabilities(&model, &diffusion, &seeds, 50, &mut rng).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.runs(), 50);
}
