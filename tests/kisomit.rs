//! Integration tests for the fixed-budget k-ISOMIT solver on simulated
//! outbreaks.

use isomit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(0.01, &mut rng);
    build_scenario(
        &social,
        &ScenarioConfig::default().with_initiators(12),
        &mut rng,
    )
}

#[test]
fn budget_equal_to_tree_count_matches_forced_roots() {
    let sc = scenario(21);
    let free = Rid::new(3.0, 1e9).unwrap().detect(&sc.snapshot);
    let t = free.tree_count;
    let fixed = solve_k_isomit(&sc.snapshot, 3.0, t).expect("tree count is feasible");
    assert_eq!(fixed.len(), t);
    // The forced roots are identical regardless of solver.
    assert_eq!(fixed.nodes(), free.nodes());
}

#[test]
fn objective_weakly_decreases_with_budget() {
    let sc = scenario(22);
    let t = Rid::new(3.0, 1e9).unwrap().detect(&sc.snapshot).tree_count;
    let mut last = f64::INFINITY;
    for k in t..(t + 6).min(sc.snapshot.node_count()) {
        let d = solve_k_isomit(&sc.snapshot, 3.0, k).expect("feasible budget");
        assert_eq!(d.len(), k, "k = {k}");
        assert!(
            d.objective <= last + 1e-9,
            "objective rose from {last} to {} at k = {k}",
            d.objective
        );
        last = d.objective;
    }
}

#[test]
fn infeasible_budgets_return_none() {
    let sc = scenario(23);
    let t = Rid::new(3.0, 1e9).unwrap().detect(&sc.snapshot).tree_count;
    if t > 1 {
        assert!(solve_k_isomit(&sc.snapshot, 3.0, t - 1).is_none());
    }
    assert!(solve_k_isomit(&sc.snapshot, 3.0, sc.snapshot.node_count() + 1).is_none());
}

#[test]
fn recall_improves_with_budget_on_merged_trees() {
    let sc = scenario(24);
    let truth: Vec<NodeId> = sc.ground_truth.nodes().collect();
    let t = Rid::new(3.0, 1e9).unwrap().detect(&sc.snapshot).tree_count;
    let base = solve_k_isomit(&sc.snapshot, 3.0, t).unwrap();
    let extended =
        solve_k_isomit(&sc.snapshot, 3.0, (t + 10).min(sc.snapshot.node_count())).unwrap();
    let base_recall = evaluate_identities(&base.nodes(), &truth).recall;
    let ext_recall = evaluate_identities(&extended.nodes(), &truth).recall;
    assert!(
        ext_recall >= base_recall,
        "recall should not fall with budget: {base_recall} -> {ext_recall}"
    );
}
