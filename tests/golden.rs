//! Golden regression fixtures: small infected snapshots checked into
//! `tests/golden/` together with the exact `RidResult` JSON the
//! pipeline must produce for them. The comparison is byte-for-byte —
//! any change to forest extraction, the DP, tie-breaking, or the JSON
//! codec that alters an answer (or its encoding) fails here with a
//! reviewable diff.
//!
//! Regenerate after an *intentional* behavior change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and commit the updated fixtures alongside the change that caused
//! them.

use isomit::prelude::*;
use isomit_core::{RidConfig, RidObjective, RidResult};
use isomit_diffusion::InfectedNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// One pinned scenario: a deterministic snapshot recipe plus the
/// detector configuration it is answered under.
struct GoldenCase {
    name: &'static str,
    seed: u64,
    config: RidConfig,
}

fn cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "default",
            seed: 101,
            config: RidConfig::default(),
        },
        GoldenCase {
            name: "beta_zero",
            seed: 202,
            config: RidConfig {
                beta: 0.0,
                ..RidConfig::default()
            },
        },
        GoldenCase {
            name: "log_likelihood",
            seed: 303,
            config: RidConfig {
                objective: RidObjective::LogLikelihood,
                ..RidConfig::default()
            },
        },
        GoldenCase {
            name: "no_external_support",
            seed: 404,
            config: RidConfig {
                external_support: false,
                ..RidConfig::default()
            },
        },
    ]
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Deterministically rebuilds the snapshot a case was generated from.
fn build_snapshot(seed: u64) -> InfectedNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let social = epinions_like_scaled(0.01, &mut rng);
    let scenario = build_scenario(&social, &isomit_datasets::ScenarioConfig::small(), &mut rng);
    scenario.snapshot
}

#[test]
fn golden_fixtures_are_byte_exact() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }

    for case in cases() {
        let snapshot_path = dir.join(format!("{}.snapshot.json", case.name));
        let expected_path = dir.join(format!("{}.expected.json", case.name));

        if update {
            let snapshot = build_snapshot(case.seed);
            std::fs::write(&snapshot_path, snapshot.to_json_string())
                .expect("write snapshot fixture");
        }

        let snapshot_text = std::fs::read_to_string(&snapshot_path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
                snapshot_path.display()
            )
        });
        let snapshot = InfectedNetwork::from_json_str(&snapshot_text)
            .unwrap_or_else(|e| panic!("corrupt fixture {}: {e}", snapshot_path.display()));

        // The snapshot codec itself must be byte-stable: parsing a
        // fixture and re-encoding it reproduces the file exactly.
        assert_eq!(
            snapshot.to_json_string(),
            snapshot_text,
            "{}: snapshot re-encoding drifted from the checked-in bytes",
            case.name
        );

        let rid = Rid::from_config(case.config).expect("valid golden config");
        let result = RidResult {
            config: rid.config(),
            detection: rid.detect(&snapshot),
        };
        let actual = result.to_json_string();

        if update {
            std::fs::write(&expected_path, &actual).expect("write expected fixture");
            continue;
        }

        let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
                expected_path.display()
            )
        });
        assert_eq!(
            actual, expected,
            "{}: RidResult diverged from the golden answer; if the change \
             is intentional, regenerate with UPDATE_GOLDEN=1 and commit",
            case.name
        );

        // And the expected fixture must survive its own decode/encode
        // round trip, so the golden files stay canonical.
        let reparsed = RidResult::from_json_str(&expected)
            .unwrap_or_else(|e| panic!("corrupt fixture {}: {e}", expected_path.display()));
        assert_eq!(
            reparsed.to_json_string(),
            expected,
            "{}: expected fixture is not in canonical encoding",
            case.name
        );
    }
}
